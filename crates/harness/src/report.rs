//! Plain-text rendering of experiment tables (the figures, as text).

use clove_net::fault::{ControlFaultStats, FaultStats};
use std::fmt::Write as _;

/// A table of `series × x-points`, e.g. average FCT per scheme per load.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure id and caption, e.g. "Fig 4b — symmetric, avg FCT (s)".
    pub title: String,
    /// The x-axis label (e.g. "load %").
    pub x_label: String,
    /// The x values.
    pub xs: Vec<f64>,
    /// One named series per scheme: `(name, y-values)` aligned with `xs`.
    /// Quarantined cells carry `f64::NAN` (rendered `-`, written `NaN` in
    /// CSV) and are itemized in [`FigureTable::quarantined`].
    pub series: Vec<(String, Vec<f64>)>,
    /// One line per quarantined cell (panicked or stalled runs the
    /// orchestrator excluded). Rendered as a footer; binaries exit non-zero
    /// when non-empty.
    pub quarantined: Vec<String>,
}

impl FigureTable {
    /// A new empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, xs: Vec<f64>) -> FigureTable {
        FigureTable { title: title.into(), x_label: x_label.into(), xs, series: Vec::new(), quarantined: Vec::new() }
    }

    /// Append a series; y length must match xs.
    pub fn push_series(&mut self, name: impl Into<String>, ys: Vec<f64>) {
        assert_eq!(ys.len(), self.xs.len(), "series length mismatch");
        self.series.push((name.into(), ys));
    }

    /// The value of `series` at `x`, if present.
    pub fn value(&self, series: &str, x: f64) -> Option<f64> {
        let xi = self.xs.iter().position(|&v| (v - x).abs() < 1e-9)?;
        self.series.iter().find(|(n, _)| n == series).map(|(_, ys)| ys[xi])
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let name_w = self.series.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(self.x_label.len());
        let _ = write!(out, "{:<name_w$}", self.x_label);
        for x in &self.xs {
            let _ = write!(out, " {:>10}", format_num(*x));
        }
        let _ = writeln!(out);
        for (name, ys) in &self.series {
            let _ = write!(out, "{name:<name_w$}");
            for y in ys {
                let _ = write!(out, " {:>10}", format_num(*y));
            }
            let _ = writeln!(out);
        }
        render_quarantine(&mut out, &self.quarantined);
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for (name, _) in &self.series {
            let _ = write!(out, ",{name}");
        }
        let _ = writeln!(out);
        for (xi, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for (_, ys) in &self.series {
                let _ = write!(out, ",{}", ys[xi]);
            }
            let _ = writeln!(out);
        }
        csv_quarantine(&mut out, &self.quarantined);
        out
    }
}

/// Footer for quarantined cells in text renders (no-op when empty).
fn render_quarantine(out: &mut String, quarantined: &[String]) {
    if quarantined.is_empty() {
        return;
    }
    let _ = writeln!(out, "QUARANTINED cells (excluded from the data above):");
    for line in quarantined {
        let _ = writeln!(out, "  ! {line}");
    }
}

/// Quarantine comment lines for CSV renders (no-op when empty, so clean
/// runs keep their pinned byte-for-byte shape).
fn csv_quarantine(out: &mut String, quarantined: &[String]) {
    for line in quarantined {
        let _ = writeln!(out, "# quarantined: {line}");
    }
}

/// One (fault case, scheme) row of the resilience report.
#[derive(Debug, Clone)]
pub struct ResilienceRow {
    /// Fault case label, e.g. "single-cut".
    pub case: String,
    /// Scheme label, e.g. "Clove-ECN".
    pub scheme: String,
    /// Pooled average FCT in seconds.
    pub avg_fct_s: f64,
    /// Average FCT relative to the same scheme's clean run (1.0 = no
    /// degradation).
    pub degradation: f64,
    /// Mean recovery time in milliseconds over the seeds that recovered;
    /// `None` when no mid-run fault was injected or no seed recovered.
    pub recovery_ms: Option<f64>,
    /// Black-holed paths evicted by discovery (summed over seeds).
    pub path_evictions: u64,
    /// Fabric fault damage (summed over seeds).
    pub stats: FaultStats,
}

/// The resilience sweep as a flat `case × scheme` table.
#[derive(Debug, Clone)]
pub struct ResilienceTable {
    /// Caption, e.g. "Resilience — S2–L2 faults at 20 ms".
    pub title: String,
    /// One row per (fault case, scheme) pair.
    pub rows: Vec<ResilienceRow>,
    /// One line per quarantined cell (see [`FigureTable::quarantined`]).
    pub quarantined: Vec<String>,
}

impl ResilienceTable {
    /// A new empty table.
    pub fn new(title: impl Into<String>) -> ResilienceTable {
        ResilienceTable { title: title.into(), rows: Vec::new(), quarantined: Vec::new() }
    }

    /// The row for `(case, scheme)`, if present.
    pub fn row(&self, case: &str, scheme: &str) -> Option<&ResilienceRow> {
        self.rows.iter().find(|r| r.case == case && r.scheme == scheme)
    }

    /// Render as an aligned text table (FCT, degradation, recovery and the
    /// per-cause fault damage side by side).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let case_w = self.rows.iter().map(|r| r.case.len()).max().unwrap_or(4).max("case".len());
        let scheme_w = self.rows.iter().map(|r| r.scheme.len()).max().unwrap_or(6).max("scheme".len());
        let _ = writeln!(
            out,
            "{:<case_w$} {:<scheme_w$} {:>10} {:>8} {:>9} {:>6} {:>8} {:>8} {:>8} {:>9} {:>6}",
            "case", "scheme", "avgFCT(s)", "degr(x)", "recov(ms)", "evict", "dDown", "dLoss", "down(ms)", "degrd(ms)", "faults",
        );
        for r in &self.rows {
            let recov = r.recovery_ms.map_or("-".to_string(), |ms| format!("{ms:.1}"));
            let _ = writeln!(
                out,
                "{:<case_w$} {:<scheme_w$} {:>10} {:>8} {:>9} {:>6} {:>8} {:>8} {:>8} {:>9} {:>6}",
                r.case,
                r.scheme,
                format_num(r.avg_fct_s),
                format!("{:.2}", r.degradation),
                recov,
                r.path_evictions,
                r.stats.drops_down,
                r.stats.drops_loss,
                format!("{:.1}", r.stats.down_time.as_secs_f64() * 1e3),
                format!("{:.1}", r.stats.degraded_time.as_secs_f64() * 1e3),
                r.stats.faults_applied,
            );
        }
        render_quarantine(&mut out, &self.quarantined);
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "case,scheme,avg_fct_s,degradation,recovery_ms,path_evictions,\
             drops_down,drops_loss,drops_overflow,drops_no_route,\
             down_time_ms,degraded_time_ms,faults_applied\n",
        );
        for r in &self.rows {
            let recov = r.recovery_ms.map_or(String::new(), |ms| format!("{ms}"));
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.case,
                r.scheme,
                r.avg_fct_s,
                r.degradation,
                recov,
                r.path_evictions,
                r.stats.drops_down,
                r.stats.drops_loss,
                r.stats.drops_overflow,
                r.stats.drops_no_route,
                r.stats.down_time.as_secs_f64() * 1e3,
                r.stats.degraded_time.as_secs_f64() * 1e3,
                r.stats.faults_applied,
            );
        }
        csv_quarantine(&mut out, &self.quarantined);
        out
    }
}

/// One (feedback-loss rate, scheme) row of the feedback-degradation
/// report.
#[derive(Debug, Clone)]
pub struct FeedbackRow {
    /// Injected control-loop loss rate in percent (0 = clean baseline).
    pub rate_pct: f64,
    /// Scheme label, e.g. "Clove-ECN".
    pub scheme: String,
    /// Pooled average FCT in seconds.
    pub avg_fct_s: f64,
    /// Average FCT relative to the same scheme's clean run (1.0 = no
    /// slowdown).
    pub avg_slowdown: f64,
    /// Pooled 99th-percentile FCT in seconds.
    pub p99_fct_s: f64,
    /// p99 FCT relative to the same scheme's clean run.
    pub p99_slowdown: f64,
    /// Mean time-to-recover in milliseconds over the seeds that recovered;
    /// `None` when nothing was injected or no seed recovered.
    pub recovery_ms: Option<f64>,
    /// Control-plane damage counters (summed over seeds).
    pub control: ControlFaultStats,
}

/// The feedback-degradation sweep as a flat `rate × scheme` table.
#[derive(Debug, Clone)]
pub struct FeedbackTable {
    /// Caption, e.g. "Feedback degradation — lossy control loop at 20 ms".
    pub title: String,
    /// One row per (loss rate, scheme) pair.
    pub rows: Vec<FeedbackRow>,
    /// One line per quarantined cell (see [`FigureTable::quarantined`]).
    pub quarantined: Vec<String>,
}

impl FeedbackTable {
    /// A new empty table.
    pub fn new(title: impl Into<String>) -> FeedbackTable {
        FeedbackTable { title: title.into(), rows: Vec::new(), quarantined: Vec::new() }
    }

    /// The row for `(rate_pct, scheme)`, if present.
    pub fn row(&self, rate_pct: f64, scheme: &str) -> Option<&FeedbackRow> {
        self.rows.iter().find(|r| (r.rate_pct - rate_pct).abs() < 1e-9 && r.scheme == scheme)
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let scheme_w = self.rows.iter().map(|r| r.scheme.len()).max().unwrap_or(6).max("scheme".len());
        let _ = writeln!(
            out,
            "{:>7} {:<scheme_w$} {:>10} {:>8} {:>10} {:>8} {:>9} {:>8} {:>8} {:>8}",
            "loss%", "scheme", "avgFCT(s)", "avg(x)", "p99FCT(s)", "p99(x)", "recov(ms)", "prbDrop", "rplDrop", "fbDrop",
        );
        for r in &self.rows {
            let recov = r.recovery_ms.map_or("-".to_string(), |ms| format!("{ms:.1}"));
            let _ = writeln!(
                out,
                "{:>7} {:<scheme_w$} {:>10} {:>8} {:>10} {:>8} {:>9} {:>8} {:>8} {:>8}",
                format!("{:.0}", r.rate_pct),
                r.scheme,
                format_num(r.avg_fct_s),
                format!("{:.2}", r.avg_slowdown),
                format_num(r.p99_fct_s),
                format!("{:.2}", r.p99_slowdown),
                recov,
                r.control.probes_dropped,
                r.control.replies_dropped,
                r.control.feedback_dropped,
            );
        }
        render_quarantine(&mut out, &self.quarantined);
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "rate_pct,scheme,avg_fct_s,avg_slowdown,p99_fct_s,p99_slowdown,recovery_ms,\
             probes_dropped,replies_dropped,feedback_dropped,feedback_delayed,\
             feedback_corrupted,control_faults_applied\n",
        );
        for r in &self.rows {
            let recov = r.recovery_ms.map_or(String::new(), |ms| format!("{ms}"));
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.rate_pct,
                r.scheme,
                r.avg_fct_s,
                r.avg_slowdown,
                r.p99_fct_s,
                r.p99_slowdown,
                recov,
                r.control.probes_dropped,
                r.control.replies_dropped,
                r.control.feedback_dropped,
                r.control.feedback_delayed,
                r.control.feedback_corrupted,
                r.control.control_faults_applied,
            );
        }
        csv_quarantine(&mut out, &self.quarantined);
        out
    }
}

fn format_num(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FigureTable {
        let mut t = FigureTable::new("Fig X", "load %", vec![30.0, 50.0, 70.0]);
        t.push_series("ECMP", vec![0.1, 0.5, 2.0]);
        t.push_series("Clove-ECN", vec![0.1, 0.2, 0.4]);
        t
    }

    #[test]
    fn lookup_by_x() {
        let t = table();
        assert_eq!(t.value("ECMP", 70.0), Some(2.0));
        assert_eq!(t.value("Clove-ECN", 30.0), Some(0.1));
        assert_eq!(t.value("nope", 30.0), None);
        assert_eq!(t.value("ECMP", 99.0), None);
    }

    #[test]
    fn render_contains_all_parts() {
        let s = table().render();
        assert!(s.contains("Fig X"));
        assert!(s.contains("ECMP"));
        assert!(s.contains("Clove-ECN"));
        assert!(s.contains("70"));
    }

    #[test]
    fn csv_shape() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "load %,ECMP,Clove-ECN");
        assert!(lines[3].starts_with("70,2,"));
    }

    #[test]
    #[should_panic]
    fn mismatched_series_rejected() {
        let mut t = FigureTable::new("t", "x", vec![1.0]);
        t.push_series("s", vec![1.0, 2.0]);
    }

    #[test]
    fn quarantined_cells_render_as_dash_with_footer() {
        let mut t = FigureTable::new("Fig Q", "load %", vec![30.0, 50.0]);
        t.push_series("ECMP", vec![0.1, f64::NAN]);
        t.quarantined.push("ECMP @ 50% load: panicked after 2 attempt(s): boom".into());
        let text = t.render();
        assert!(text.contains(" -"), "NaN cells render as '-': {text}");
        assert!(text.contains("QUARANTINED cells"));
        assert!(text.contains("boom"));
        let csv = t.to_csv();
        assert!(csv.contains("NaN"), "NaN survives into CSV: {csv}");
        assert!(csv.lines().last().unwrap().starts_with("# quarantined:"));
    }

    #[test]
    fn clean_tables_have_no_quarantine_footer() {
        let t = table();
        assert!(!t.render().contains("QUARANTINED"));
        assert!(!t.to_csv().contains('#'));
    }

    fn resilience_table() -> ResilienceTable {
        let mut t = ResilienceTable::new("Resilience");
        t.rows.push(ResilienceRow {
            case: "clean".into(),
            scheme: "ECMP".into(),
            avg_fct_s: 0.1,
            degradation: 1.0,
            recovery_ms: None,
            path_evictions: 0,
            stats: FaultStats::default(),
        });
        t.rows.push(ResilienceRow {
            case: "single-cut".into(),
            scheme: "ECMP".into(),
            avg_fct_s: 0.3,
            degradation: 3.0,
            recovery_ms: Some(12.5),
            path_evictions: 2,
            stats: FaultStats { drops_down: 9, faults_applied: 2, ..FaultStats::default() },
        });
        t
    }

    #[test]
    fn resilience_render_and_lookup() {
        let t = resilience_table();
        let s = t.render();
        assert!(s.contains("Resilience"));
        assert!(s.contains("single-cut"));
        assert!(s.contains("12.5"));
        assert!(s.contains("recov(ms)"));
        assert_eq!(t.row("single-cut", "ECMP").unwrap().path_evictions, 2);
        assert!(t.row("flapping", "ECMP").is_none());
    }

    fn feedback_table() -> FeedbackTable {
        let mut t = FeedbackTable::new("Feedback degradation");
        t.rows.push(FeedbackRow {
            rate_pct: 0.0,
            scheme: "Clove-ECN".into(),
            avg_fct_s: 0.1,
            avg_slowdown: 1.0,
            p99_fct_s: 0.4,
            p99_slowdown: 1.0,
            recovery_ms: None,
            control: ControlFaultStats::default(),
        });
        t.rows.push(FeedbackRow {
            rate_pct: 50.0,
            scheme: "Clove-ECN".into(),
            avg_fct_s: 0.12,
            avg_slowdown: 1.2,
            p99_fct_s: 0.6,
            p99_slowdown: 1.5,
            recovery_ms: Some(7.5),
            control: ControlFaultStats { probes_dropped: 11, feedback_dropped: 42, control_faults_applied: 3, ..ControlFaultStats::default() },
        });
        t
    }

    #[test]
    fn feedback_render_and_lookup() {
        let t = feedback_table();
        let s = t.render();
        assert!(s.contains("Feedback degradation"));
        assert!(s.contains("recov(ms)"));
        assert!(s.contains("7.5"));
        assert!(s.contains("42"));
        assert_eq!(t.row(50.0, "Clove-ECN").unwrap().control.probes_dropped, 11);
        assert!(t.row(5.0, "Clove-ECN").is_none());
        assert!(t.row(50.0, "ECMP").is_none());
    }

    #[test]
    fn feedback_csv_shape() {
        let csv = feedback_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("rate_pct,scheme,avg_fct_s"));
        // The clean baseline leaves the recovery cell empty.
        assert!(lines[1].contains(",,"));
        assert!(lines[2].starts_with("50,Clove-ECN,0.12,1.2,0.6,1.5,7.5,11,"));
    }

    #[test]
    fn resilience_csv_shape() {
        let csv = resilience_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("case,scheme,avg_fct_s"));
        // A never-recovered row leaves the recovery cell empty.
        assert!(lines[1].contains(",,"));
        assert!(lines[2].starts_with("single-cut,ECMP,0.3,3,12.5,2,9,"));
    }
}
