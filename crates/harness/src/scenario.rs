//! Scenario construction and the run loop.
//!
//! A [`Scenario`] names everything one experiment run needs: the scheme,
//! the topology (symmetric or with the paper's S2–L2 failure), the target
//! load, job counts and the random seed. [`Scenario::run_rpc`] executes
//! the web-search RPC workload and returns FCT summaries;
//! [`Scenario::run_incast`] executes the Figure-7 partition-aggregate
//! workload and returns client goodput.

use crate::invariants::InvariantMonitor;
use crate::profile::Profile;
use crate::scheme::Scheme;
use crate::stack::HostStack;
use clove_net::fabric::Event;
use clove_net::fault::{CableSelector, ControlFaultPlan, ControlFaultStats, FaultPlan, FaultStats};
use clove_net::topology::{LeafSpine, Topology};
use clove_net::types::{HostId, NodeId};
use clove_net::Network;
use clove_sim::{Duration, EventQueue, QueueBackend, QueueProfile, SimRng, Time};
use clove_telemetry::{LoopProfile, Trace, TraceEvent, DEFAULT_TRACE_CAPACITY};
use clove_workload::fct::FlowRecord;
use clove_workload::{load_to_rate, FctSummary, FlowSizeDist, IncastSpec, RpcModel};
use rustc_hash::FxHashMap;

/// Which topology variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// The 2×2×16 leaf-spine testbed, all links healthy.
    Symmetric,
    /// Same, with one 40G S2–L2 cable failed before traffic starts —
    /// the paper's asymmetry case (25% bisection loss).
    Asymmetric,
    /// A k-ary fat-tree (k even, ≥4; k²·k/4 hosts at the access rate) —
    /// exercises the paper's "works on any topology" claim end to end.
    FatTree {
        /// Pod arity.
        k: u32,
    },
}

/// One experiment run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The load balancer under test.
    pub scheme: Scheme,
    /// Topology variant.
    pub topology: TopologyKind,
    /// Offered load as a fraction of the bisection bandwidth.
    pub load: f64,
    /// Jobs per client connection.
    pub jobs_per_conn: u32,
    /// Persistent connections per client (testbed: several; sims: 3).
    pub conns_per_client: u32,
    /// RNG seed (paper runs 3 seeds and averages).
    pub seed: u64,
    /// Parameter profile.
    pub profile: Profile,
    /// Hard wall on simulated time.
    pub horizon: Time,
    /// Fault timeline injected during the run (cuts, flaps, degrades,
    /// stochastic loss — see [`clove_net::fault`]). Cables are named by
    /// [`CableSelector`], resolved against the built topology at run time.
    pub faults: FaultPlan,
    /// Control-plane fault timeline (probe/reply/feedback loss, delay,
    /// corruption) applied fabric-wide — the feedback-degradation knob.
    pub control_faults: ControlFaultPlan,
    /// Run the [`InvariantMonitor`] at every run-loop chunk boundary and
    /// report its violations in the outcome (`clove-run --strict`).
    pub strict: bool,
    /// Event-queue backend: the timing wheel (default) or the legacy
    /// binary heap, kept as a differential-testing oracle (`--queue heap`).
    pub queue: QueueBackend,
    /// Shared progress/cancellation handle. When set, the run loop
    /// publishes events-processed and simulated time through it and honors
    /// cooperative stop requests (the orchestrator's stall watchdog).
    pub control: Option<std::sync::Arc<clove_sim::RunControl>>,
    /// Capture a structured decision trace during the run. The buffer is
    /// created on the worker thread (the trace handle is `!Send`) and the
    /// recorded events come back in [`RpcOutcome::trace`]. Tracing must not
    /// change any simulation outcome — only observe it.
    pub trace: bool,
}

impl Scenario {
    /// A scenario with everything defaulted except scheme/topology/load.
    pub fn new(scheme: Scheme, topology: TopologyKind, load: f64, seed: u64) -> Scenario {
        Scenario {
            scheme,
            topology,
            load,
            jobs_per_conn: 40,
            conns_per_client: 2,
            seed,
            profile: Profile::default(),
            horizon: Time::from_secs(30),
            faults: FaultPlan::none(),
            control_faults: ControlFaultPlan::none(),
            strict: false,
            queue: QueueBackend::default(),
            control: None,
            trace: false,
        }
    }

    /// Back-compat constructor for the classic dynamic-failure experiment:
    /// an announced, never-restored cut of one S2–L2 cable at `at`.
    pub fn fail_at(&mut self, at: Time) -> &mut Self {
        self.faults.extend(FaultPlan::cut(at, CableSelector::S2_L2));
        self
    }

    /// The full fault timeline for this run: the `Asymmetric` topology is
    /// itself expressed as an announced cut at t=0 (same named cable the
    /// paper fails), merged ahead of any scenario-specific faults.
    fn effective_faults(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        if self.topology == TopologyKind::Asymmetric {
            plan.extend(FaultPlan::cut(Time::ZERO, CableSelector::S2_L2));
        }
        plan.extend(self.faults.clone());
        plan
    }

    /// Validate the scenario's fault plans: spec parameters must be in
    /// range (flap duty cycles, loss rates), every named node must lower
    /// onto an incident cable set, and every named cable must resolve in
    /// the topology this scenario builds. The error names the offending
    /// selector and lists the valid selectors for the topology, so a
    /// mis-written plan is a diagnosis rather than a panic deep inside a
    /// run.
    pub fn validate(&self) -> Result<(), String> {
        self.faults.validate().map_err(|e| format!("fault plan: {e}"))?;
        self.control_faults.validate().map_err(|e| format!("control fault plan: {e}"))?;
        let topo = self.build_topology();
        let lowered = self
            .effective_faults()
            .lower_nodes(|n| topo.incident_cables(n))
            .map_err(|e| format!("fault plan: {e} (topology '{}'; {})", topo.name, topo.node_catalog()))?;
        for action in lowered.expand() {
            if topo.resolve_cable(action.cable).is_none() {
                return Err(format!("fault plan names cable {:?}, which does not resolve in topology '{}'; {}", action.cable, topo.name, topo.cable_catalog()));
            }
        }
        Ok(())
    }

    /// Schedule every expanded fault action against both directions of its
    /// resolved cable — node faults lowered onto their incident cable sets
    /// first — plus the node lifecycle events carrying warm/cold state
    /// semantics, plus every control-plane fault (fabric-wide, no cable to
    /// resolve). Cable flips are pushed before node lifecycle events, so
    /// at a restart instant links are restored and routes recomputed
    /// before any cold-state flush runs. Errors (with the offending
    /// selector and the topology's valid names) when the plan names a
    /// cable or node the topology cannot resolve.
    fn schedule_faults(&self, topo: &Topology, queue: &mut EventQueue<Event>) -> Result<(), String> {
        let effective = self.effective_faults();
        let lowered =
            effective.lower_nodes(|n| topo.incident_cables(n)).map_err(|e| format!("fault plan: {e} (topology '{}'; {})", topo.name, topo.node_catalog()))?;
        for action in lowered.expand() {
            let (a, b) = topo.resolve_cable(action.cable).ok_or_else(|| {
                format!("fault plan names cable {:?}, which does not resolve in topology '{}'; {}", action.cable, topo.name, topo.cable_catalog())
            })?;
            for link in [a, b] {
                queue.push(action.at, Event::Fault { link, action: action.action, announced: action.announced });
            }
        }
        for action in effective.node_actions() {
            // The switch is resolved here — only the topology knows the
            // tier layout; `None` means a host/hypervisor node.
            let switch = topo.resolve_switch(action.node);
            queue.push(action.at, Event::NodeFault { node: action.node, switch, up: action.up, cold: action.cold });
        }
        for action in self.control_faults.expand() {
            queue.push(action.at, Event::ControlFault { action: action.action });
        }
        Ok(())
    }

    /// Pre-size the event queue from the scenario's scale: every in-flight
    /// packet, timer and probe is one queued event, so the steady state is
    /// roughly proportional to connections. The hint is deliberately
    /// generous — over-reserving costs a few MB once, under-reserving costs
    /// repeated growth of the queue's internal buffers mid-run (heap
    /// storage, or wheel slot/run vectors).
    pub fn event_capacity_hint(&self) -> usize {
        let conns = 64usize.max((self.conns_per_client as usize) * 64) * 4;
        conns.next_power_of_two().clamp(1 << 16, 1 << 20)
    }

    fn build_topology(&self) -> Topology {
        if let TopologyKind::FatTree { k } = self.topology {
            return clove_net::topology::FatTree {
                k,
                access_bps: self.profile.access_bps,
                fabric_bps: self.profile.access_bps, // uniform rates, as usual for fat-trees
                scheme: self.scheme.fabric_scheme(&self.profile),
                seed: self.seed,
            }
            .build();
        }
        let mut spec = LeafSpine::paper_testbed(1.0, self.seed);
        spec.access_bps = self.profile.access_bps;
        spec.fabric_bps = self.profile.fabric_bps;
        spec.access_cfg = self.profile.access_link(self.scheme.int_enabled());
        spec.fabric_cfg = self.profile.fabric_link(self.scheme.int_enabled());
        spec.scheme = self.scheme.fabric_scheme(&self.profile);
        // The Asymmetric variant is no longer special-cased here: it is an
        // announced S2–L2 cut at t=0 in `effective_faults`, scheduled like
        // any other fault.
        spec.build()
    }

    /// Run the web-search RPC workload, panicking on an invalid scenario
    /// (unknown cable in a fault plan, out-of-range fault rates). Drivers
    /// that construct plans programmatically should prefer
    /// [`Scenario::try_run_rpc`].
    pub fn run_rpc(&self, dist: &FlowSizeDist) -> RpcOutcome {
        self.try_run_rpc(dist).unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Run the web-search RPC workload, returning a validation error for a
    /// mis-written scenario instead of panicking.
    pub fn try_run_rpc(&self, dist: &FlowSizeDist) -> Result<RpcOutcome, String> {
        self.faults.validate().map_err(|e| format!("fault plan: {e}"))?;
        self.control_faults.validate().map_err(|e| format!("control fault plan: {e}"))?;
        let topo = self.build_topology();
        let num_hosts = topo.num_hosts;
        let bisection = topo.bisection_bps;
        let mut stack = HostStack::new(num_hosts, &self.scheme, self.profile, self.seed);

        // Plan the workload.
        let hosts: Vec<HostId> = (0..num_hosts).map(HostId).collect();
        let model = RpcModel::half_and_half(&hosts, self.conns_per_client, dist.clone());
        let mut rng = SimRng::new(self.seed ^ 0x0C0FFEE);
        let plans = model.plan_connections(&mut rng);
        let mean_bytes = model.mean_flow_bytes();
        let rate = load_to_rate(self.load, bisection, model.total_connections(), mean_bytes);
        let mean_gap = Duration::from_secs_f64(1.0 / rate);

        let mptcp = self.scheme.mptcp_subflows();
        for plan in &plans {
            let conn_idx = stack.add_connection(plan, mptcp, Time::ZERO);
            let jobs = model.sample_jobs(&mut rng, self.jobs_per_conn, mean_gap);
            stack.set_jobs(plan.client, conn_idx, jobs);
        }

        let mut queue: EventQueue<Event> = EventQueue::with_capacity_and_backend(self.event_capacity_hint(), self.queue);
        stack.bootstrap(&mut |host, tok, at| {
            queue.push(at, Event::HostTimer { host, token: tok });
        });
        if matches!(self.scheme, Scheme::Hula) {
            queue.push(Time::ZERO, Event::HulaTick);
        }
        self.schedule_faults(&topo, &mut queue)?;
        // Recovery is measured against the first *mid-run* fault — link,
        // node or control-plane (a t=0 cut is a static asymmetry, not an
        // incident to recover from).
        let effective = self.effective_faults();
        let first_fault = effective
            .expand()
            .into_iter()
            .map(|a| a.at)
            .chain(effective.node_actions().into_iter().map(|a| a.at))
            .chain(self.control_faults.expand().into_iter().map(|a| a.at))
            .filter(|&at| at > Time::ZERO)
            .min();

        let mut net = Network::new(topo.fabric, stack);
        // The trace buffer is created here, on the thread that runs the
        // cell, so it is per-cell by construction and its insertion order
        // is the cell's deterministic event order.
        let trace = if self.trace { Trace::new(DEFAULT_TRACE_CAPACITY) } else { Trace::disabled() };
        if self.trace {
            net.hosts.set_trace(trace.clone());
            net.fabric.set_trace(trace.clone());
        }
        let mut monitor = self.strict.then(InvariantMonitor::new);
        let summary = run_to_completion(&mut net, &mut queue, self.horizon, monitor.as_mut(), self.control.as_deref());
        let end = summary.end_time;
        // Commit every transmission that happened by the end of the run so
        // the per-link stats below are exact under the lazy link model.
        net.fabric.settle_all(end, &mut queue);
        // Logical event count: scheduler pops plus one per transmitted
        // packet — the per-packet TxDone events the lazy link model
        // eliminated — so the metric stays comparable across backends and
        // with earlier baselines.
        let events = summary.events + net.fabric.links.iter().map(|l| l.stats.tx_packets).sum::<u64>();

        let drops: u64 = net.fabric.links.iter().map(|l| l.stats.drops_overflow + l.stats.drops_down).sum();
        let marks: u64 = net.fabric.links.iter().map(|l| l.stats.ecn_marks).sum();
        net.hosts.aggregate_transport_stats();
        let window = fct_window_for(self.profile.probe_interval);
        let (rate, base) = (self.profile.access_bps, self.profile.loaded_rtt);
        let windows = fct_windows(net.hosts.fct.records(), window, rate, base);
        let recovery = first_fault.and_then(|at| recovery_time(net.hosts.fct.records(), at, window, RECOVERY_FACTOR, rate, base));
        let (trace_events, trace_dropped) = trace.take();
        Ok(RpcOutcome {
            fct: net.hosts.fct.summarize(),
            sim_time: end,
            events,
            drops,
            ecn_marks: marks,
            timeouts: net.hosts.stats.timeouts,
            retransmits: net.hosts.stats.retransmits,
            fast_retransmits: net.hosts.stats.fast_retransmits,
            spurious_undos: net.hosts.stats.spurious_undos,
            path_updates: net.hosts.stats.path_updates,
            path_evictions: net.hosts.stats.path_evictions,
            fault_stats: net.fabric.fault_stats(end),
            control_stats: net.fabric.control_stats(),
            fct_windows: windows,
            recovery,
            stalled: net.hosts.stalled_report(),
            link_report: link_report(&net.fabric),
            violations: monitor.map(|m| m.violations).unwrap_or_default(),
            queue_profile: queue.profile().clone(),
            loop_profile: net.loop_profile().clone(),
            trace: trace_events,
            trace_dropped,
        })
    }

    /// Run the incast workload at the given fan-in, panicking on an invalid
    /// scenario; see [`Scenario::try_run_incast`].
    pub fn run_incast(&self, fanout: u32, requests: u32, object_bytes: u64) -> IncastOutcome {
        self.try_run_incast(fanout, requests, object_bytes).unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Run the incast workload at the given fan-in, returning a validation
    /// error for a mis-written scenario instead of panicking.
    pub fn try_run_incast(&self, fanout: u32, requests: u32, object_bytes: u64) -> Result<IncastOutcome, String> {
        self.faults.validate().map_err(|e| format!("fault plan: {e}"))?;
        self.control_faults.validate().map_err(|e| format!("control fault plan: {e}"))?;
        let topo = self.build_topology();
        let num_hosts = topo.num_hosts;
        let mut stack = HostStack::new(num_hosts, &self.scheme, self.profile, self.seed);

        // Client is host 0 (leaf 0); servers are the 16 hosts of leaf 1 —
        // responses cross the fabric and converge on the client's access
        // downlink, as in the paper's testbed.
        let client = HostId(0);
        let servers: Vec<HostId> = (16..32).map(HostId).collect();
        let mptcp = self.scheme.mptcp_subflows();
        let mut server_conn = FxHashMap::default();
        for (i, &server) in servers.iter().enumerate() {
            // Server→client data pipe.
            let plan = clove_workload::rpc::ConnectionPlan {
                client: server, // the sending side of the pipe
                server: client,
                sport: 7000 + i as u16 * 16,
                dport: 5201,
            };
            let conn_idx = stack.add_connection(&plan, mptcp, Time::ZERO);
            server_conn.insert(server, conn_idx);
        }
        let spec = IncastSpec { client, servers, object_bytes, fanout, requests };
        stack.set_incast(spec, server_conn, self.seed);

        let mut queue: EventQueue<Event> = EventQueue::with_capacity_and_backend(self.event_capacity_hint(), self.queue);
        stack.bootstrap(&mut |host, tok, at| {
            queue.push(at, Event::HostTimer { host, token: tok });
        });
        if matches!(self.scheme, Scheme::Hula) {
            queue.push(Time::ZERO, Event::HulaTick);
        }
        self.schedule_faults(&topo, &mut queue)?;

        let mut net = Network::new(topo.fabric, stack);
        let mut monitor = self.strict.then(InvariantMonitor::new);
        let summary = run_to_completion(&mut net, &mut queue, self.horizon, monitor.as_mut(), self.control.as_deref());
        net.fabric.settle_all(summary.end_time, &mut queue);
        // Same logical event accounting as the RPC path (see above).
        let events = summary.events + net.fabric.links.iter().map(|l| l.stats.tx_packets).sum::<u64>();
        let (rounds, elapsed) = net.hosts.incast_result().expect("incast configured");
        let bytes = rounds as u64 * object_bytes;
        let goodput_bps = if elapsed.is_zero() { 0.0 } else { bytes as f64 * 8.0 / elapsed.as_secs_f64() };
        Ok(IncastOutcome {
            goodput_bps,
            rounds,
            sim_time: summary.end_time,
            events,
            timeouts: net.hosts.stats.timeouts,
            invariant_violations: monitor.map(|m| m.violations.len() as u64).unwrap_or(0),
        })
    }
}

/// Drive the network until all jobs complete or the horizon passes. When a
/// monitor is supplied it checks the full invariant set at every chunk
/// boundary (including the final state), so a violation is caught within
/// 50 ms of simulated time of its cause. When a [`clove_sim::RunControl`]
/// is supplied the inner loop publishes progress through it and a stop
/// request ends the run early with `stopped` set (the outcome is then
/// partial and callers — the orchestrator — discard it as timed out).
fn run_to_completion(
    net: &mut Network<HostStack>,
    queue: &mut EventQueue<Event>,
    horizon: Time,
    mut monitor: Option<&mut InvariantMonitor>,
    control: Option<&clove_sim::RunControl>,
) -> clove_sim::RunSummary {
    let chunk = Duration::from_millis(50);
    let mut upto = Time::ZERO + chunk;
    let mut total = clove_sim::RunSummary { events: 0, end_time: Time::ZERO, hit_horizon: false, stopped: false };
    loop {
        let s = clove_sim::run_controlled(net, queue, upto.min(horizon), control);
        total.events += s.events;
        total.end_time = total.end_time.max(s.end_time);
        total.hit_horizon = s.hit_horizon;
        if s.stopped {
            total.stopped = true;
            return total;
        }
        if let Some(m) = monitor.as_deref_mut() {
            m.check(total.end_time, net);
        }
        let done = net.hosts.fct.completed() as u64 >= net.hosts.total_jobs;
        if done || !s.hit_horizon || upto >= horizon {
            return total;
        }
        upto += chunk;
    }
}

/// Results of one RPC run.
#[derive(Debug, Clone)]
pub struct RpcOutcome {
    /// FCT summaries (all / mice / elephants / p99).
    pub fct: FctSummary,
    /// Simulated time at the last event.
    pub sim_time: Time,
    /// Events processed.
    pub events: u64,
    /// Packets dropped in the fabric.
    pub drops: u64,
    /// CE marks applied.
    pub ecn_marks: u64,
    /// TCP timeouts.
    pub timeouts: u64,
    /// TCP retransmissions (all kinds).
    pub retransmits: u64,
    /// Fast retransmissions.
    pub fast_retransmits: u64,
    /// Spurious retransmissions undone (DSACK).
    pub spurious_undos: u64,
    /// Discovery updates installed.
    pub path_updates: u64,
    /// Black-holed paths evicted by discovery and dropped from policies.
    pub path_evictions: u64,
    /// Aggregated fault damage: drops by cause, down/degraded link-time.
    pub fault_stats: FaultStats,
    /// Control-plane fault damage: probes/replies/feedback lost, delayed
    /// or corrupted by the injected control faults.
    pub control_stats: ControlFaultStats,
    /// Mean FCT slowdown (FCT over the flow's unloaded ideal) per window
    /// of completion time — the resilience experiments' time series.
    pub fct_windows: Vec<(Time, f64)>,
    /// Time from the first mid-run fault until the windowed slowdown
    /// returned within [`RECOVERY_FACTOR`]× of the pre-fault mean; `None`
    /// when no mid-run fault was injected or it never came back within
    /// bound.
    pub recovery: Option<Duration>,
    /// Diagnostic lines for connections that never drained.
    pub stalled: Vec<String>,
    /// Per-fabric-link utilization diagnostics.
    pub link_report: Vec<String>,
    /// Invariant violations detected by the strict-mode monitor (empty
    /// when the run was clean, or when `strict` was off).
    pub violations: Vec<String>,
    /// Event-queue pressure profile (peak pending events, push-to-pop
    /// delay histogram) — the data wheel bucket sizing is tuned from.
    pub queue_profile: QueueProfile,
    /// Event-loop profile: per-event-kind dispatch counts and sim-time
    /// occupancy. Deterministic, so identical at any `--jobs`.
    pub loop_profile: LoopProfile,
    /// Structured decision trace (empty unless [`Scenario::trace`] is set).
    pub trace: Vec<TraceEvent>,
    /// Events dropped because the trace buffer hit capacity.
    pub trace_dropped: u64,
}

/// Recovery bound: the run counts as recovered once the per-window mean
/// FCT is back within this factor of the pre-fault mean.
pub const RECOVERY_FACTOR: f64 = 1.5;

/// Window for the FCT time series: the probing interval (the cadence at
/// which the edge can react), floored so degenerate profiles don't produce
/// thousands of empty windows.
fn fct_window_for(probe_interval: Duration) -> Duration {
    probe_interval.max(Duration::from_millis(1))
}

/// The unloaded ideal FCT a flow of `bytes` could hope for: a base latency
/// plus serialization at the access rate. Used to turn raw FCTs into
/// size-independent slowdowns, so a window isn't judged "degraded" merely
/// because an elephant happened to finish in it.
fn ideal_fct_secs(bytes: u64, rate_bps: u64, base: Duration) -> f64 {
    base.as_secs_f64() + bytes as f64 * 8.0 / rate_bps as f64
}

/// Mean FCT slowdown (FCT over the flow's unloaded ideal at `rate_bps`
/// with `base` latency) of flows grouped by completion-time window.
/// Windows with no completions are omitted.
pub fn fct_windows(records: &[FlowRecord], window: Duration, rate_bps: u64, base: Duration) -> Vec<(Time, f64)> {
    if records.is_empty() || window.is_zero() {
        return Vec::new();
    }
    let mut sums: FxHashMap<u64, (f64, u64)> = FxHashMap::default();
    for r in records {
        let idx = r.end.0 / window.0;
        let e = sums.entry(idx).or_insert((0.0, 0));
        e.0 += r.fct_secs() / ideal_fct_secs(r.bytes, rate_bps, base);
        e.1 += 1;
    }
    let mut out: Vec<(Time, f64)> = sums.into_iter().map(|(i, (s, c))| (Time(i * window.0), s / c as f64)).collect();
    out.sort_by_key(|&(t, _)| t);
    out
}

/// Time from `fault_at` until the windowed mean slowdown first returns
/// within `factor`× the pre-fault mean (measured to the end of the
/// recovering window). `None` when there is no pre-fault baseline or the
/// slowdown never comes back within bound.
pub fn recovery_time(records: &[FlowRecord], fault_at: Time, window: Duration, factor: f64, rate_bps: u64, base: Duration) -> Option<Duration> {
    let pre: Vec<f64> = records.iter().filter(|r| r.end <= fault_at).map(|r| r.fct_secs() / ideal_fct_secs(r.bytes, rate_bps, base)).collect();
    if pre.is_empty() {
        return None;
    }
    let bound = factor * pre.iter().sum::<f64>() / pre.len() as f64;
    for (start, mean) in fct_windows(records, window, rate_bps, base) {
        if start < fault_at {
            continue;
        }
        if mean <= bound {
            return Some((start + window).saturating_since(fault_at));
        }
    }
    None
}

/// Summarize switch-to-switch link usage (diagnostics).
fn link_report(fabric: &clove_net::Fabric) -> Vec<String> {
    fabric
        .links
        .iter()
        .filter(|l| matches!((l.from, l.to), (NodeId::Switch(_), NodeId::Switch(_))))
        .map(|l| {
            format!(
                "{:?}->{:?} {} tx={}MB drops={} marks={} maxq={}KB",
                l.from,
                l.to,
                if l.up { "up" } else { "DOWN" },
                l.stats.tx_bytes / 1_000_000,
                l.stats.drops_overflow,
                l.stats.ecn_marks,
                l.stats.max_queue_bytes / 1024,
            )
        })
        .collect()
}

/// Results of one incast run.
#[derive(Debug, Clone, Copy)]
pub struct IncastOutcome {
    /// Client receive goodput in bits/second.
    pub goodput_bps: f64,
    /// Completed request rounds.
    pub rounds: u32,
    /// Simulated time at the last event.
    pub sim_time: Time,
    /// Events processed.
    pub events: u64,
    /// TCP timeouts.
    pub timeouts: u64,
    /// Invariant violations counted by the strict-mode monitor (0 when
    /// clean or when `strict` was off).
    pub invariant_violations: u64,
}
