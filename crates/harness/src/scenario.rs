//! Scenario construction and the run loop.
//!
//! A [`Scenario`] names everything one experiment run needs: the scheme,
//! the topology (symmetric or with the paper's S2–L2 failure), the target
//! load, job counts and the random seed. [`Scenario::run_rpc`] executes
//! the web-search RPC workload and returns FCT summaries;
//! [`Scenario::run_incast`] executes the Figure-7 partition-aggregate
//! workload and returns client goodput.

use crate::profile::Profile;
use crate::scheme::Scheme;
use crate::stack::HostStack;
use clove_net::fabric::Event;
use clove_net::topology::{LeafSpine, Topology};
use clove_net::types::{HostId, NodeId, SwitchId};
use clove_net::Network;
use clove_sim::{Duration, EventQueue, SimRng, Time};
use clove_workload::{load_to_rate, FctSummary, FlowSizeDist, IncastSpec, RpcModel};
use std::collections::HashMap;

/// Which topology variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// The 2×2×16 leaf-spine testbed, all links healthy.
    Symmetric,
    /// Same, with one 40G S2–L2 cable failed before traffic starts —
    /// the paper's asymmetry case (25% bisection loss).
    Asymmetric,
    /// A k-ary fat-tree (k even, ≥4; k²·k/4 hosts at the access rate) —
    /// exercises the paper's "works on any topology" claim end to end.
    FatTree {
        /// Pod arity.
        k: u32,
    },
}

/// One experiment run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The load balancer under test.
    pub scheme: Scheme,
    /// Topology variant.
    pub topology: TopologyKind,
    /// Offered load as a fraction of the bisection bandwidth.
    pub load: f64,
    /// Jobs per client connection.
    pub jobs_per_conn: u32,
    /// Persistent connections per client (testbed: several; sims: 3).
    pub conns_per_client: u32,
    /// RNG seed (paper runs 3 seeds and averages).
    pub seed: u64,
    /// Parameter profile.
    pub profile: Profile,
    /// Hard wall on simulated time.
    pub horizon: Time,
    /// Fail one S2–L2 cable *mid-run* at this instant (dynamic failure —
    /// exercises on-line re-discovery; independent of `topology`, which
    /// fails the cable before traffic starts).
    pub fail_at: Option<Time>,
}

impl Scenario {
    /// A scenario with everything defaulted except scheme/topology/load.
    pub fn new(scheme: Scheme, topology: TopologyKind, load: f64, seed: u64) -> Scenario {
        Scenario {
            scheme,
            topology,
            load,
            jobs_per_conn: 40,
            conns_per_client: 2,
            seed,
            profile: Profile::default(),
            horizon: Time::from_secs(30),
            fail_at: None,
        }
    }

    fn build_topology(&self) -> Topology {
        if let TopologyKind::FatTree { k } = self.topology {
            return clove_net::topology::FatTree {
                k,
                access_bps: self.profile.access_bps,
                fabric_bps: self.profile.access_bps, // uniform rates, as usual for fat-trees
                scheme: self.scheme.fabric_scheme(&self.profile),
                seed: self.seed,
            }
            .build();
        }
        let mut spec = LeafSpine::paper_testbed(1.0, self.seed);
        spec.access_bps = self.profile.access_bps;
        spec.fabric_bps = self.profile.fabric_bps;
        spec.access_cfg = self.profile.access_link(self.scheme.int_enabled());
        spec.fabric_cfg = self.profile.fabric_link(self.scheme.int_enabled());
        spec.scheme = self.scheme.fabric_scheme(&self.profile);
        let mut topo = spec.build();
        if self.topology == TopologyKind::Asymmetric {
            // Fail one S2–L2 cable: spine index 1 (switch id 3) to leaf 1.
            let cable = topo
                .cable_between(NodeId::Switch(SwitchId(1)), NodeId::Switch(SwitchId(3)))
                .expect("fabric cable exists");
            topo.fail_cable(cable);
        }
        topo
    }

    /// Run the web-search RPC workload.
    pub fn run_rpc(&self, dist: &FlowSizeDist) -> RpcOutcome {
        let topo = self.build_topology();
        let num_hosts = topo.num_hosts;
        let bisection = topo.bisection_bps;
        let mut stack = HostStack::new(num_hosts, &self.scheme, self.profile, self.seed);

        // Plan the workload.
        let hosts: Vec<HostId> = (0..num_hosts).map(HostId).collect();
        let model = RpcModel::half_and_half(&hosts, self.conns_per_client, dist.clone());
        let mut rng = SimRng::new(self.seed ^ 0x0C0FFEE);
        let plans = model.plan_connections(&mut rng);
        let mean_bytes = model.mean_flow_bytes();
        let rate = load_to_rate(self.load, bisection, model.total_connections(), mean_bytes);
        let mean_gap = Duration::from_secs_f64(1.0 / rate);

        let mptcp = self.scheme.mptcp_subflows();
        for plan in &plans {
            let conn_idx = stack.add_connection(plan, mptcp, Time::ZERO);
            let jobs = model.sample_jobs(&mut rng, self.jobs_per_conn, mean_gap);
            stack.set_jobs(plan.client, conn_idx, jobs);
        }

        let mut queue: EventQueue<Event> = EventQueue::with_capacity(1 << 16);
        stack.bootstrap(&mut |host, tok, at| {
            queue.push(at, Event::HostTimer { host, token: tok });
        });
        if matches!(self.scheme, Scheme::Hula) {
            queue.push(Time::ZERO, Event::HulaTick);
        }
        if let Some(at) = self.fail_at {
            assert!(
                !matches!(self.topology, TopologyKind::FatTree { .. }),
                "mid-run failure injection targets the leaf-spine cable"
            );
            let cable = topo
                .cable_between(NodeId::Switch(SwitchId(1)), NodeId::Switch(SwitchId(3)))
                .expect("fabric cable exists");
            queue.push(at, Event::LinkAdmin { link: cable.0, up: false });
            queue.push(at, Event::LinkAdmin { link: cable.1, up: false });
        }

        let mut net = Network::new(topo.fabric, stack);
        let summary = run_to_completion(&mut net, &mut queue, self.horizon);
        let events = summary.events;
        let end = summary.end_time;

        let drops: u64 = net.fabric.links.iter().map(|l| l.stats.drops_overflow + l.stats.drops_down).sum();
        let marks: u64 = net.fabric.links.iter().map(|l| l.stats.ecn_marks).sum();
        net.hosts.aggregate_transport_stats();
        RpcOutcome {
            fct: net.hosts.fct.summarize(),
            sim_time: end,
            events,
            drops,
            ecn_marks: marks,
            timeouts: net.hosts.stats.timeouts,
            retransmits: net.hosts.stats.retransmits,
            fast_retransmits: net.hosts.stats.fast_retransmits,
            spurious_undos: net.hosts.stats.spurious_undos,
            path_updates: net.hosts.stats.path_updates,
            stalled: net.hosts.stalled_report(),
            link_report: link_report(&net.fabric),
        }
    }

    /// Run the incast workload at the given fan-in.
    pub fn run_incast(&self, fanout: u32, requests: u32, object_bytes: u64) -> IncastOutcome {
        let topo = self.build_topology();
        let num_hosts = topo.num_hosts;
        let mut stack = HostStack::new(num_hosts, &self.scheme, self.profile, self.seed);

        // Client is host 0 (leaf 0); servers are the 16 hosts of leaf 1 —
        // responses cross the fabric and converge on the client's access
        // downlink, as in the paper's testbed.
        let client = HostId(0);
        let servers: Vec<HostId> = (16..32).map(HostId).collect();
        let mptcp = self.scheme.mptcp_subflows();
        let mut server_conn = HashMap::new();
        for (i, &server) in servers.iter().enumerate() {
            // Server→client data pipe.
            let plan = clove_workload::rpc::ConnectionPlan {
                client: server, // the sending side of the pipe
                server: client,
                sport: 7000 + i as u16 * 16,
                dport: 5201,
            };
            let conn_idx = stack.add_connection(&plan, mptcp, Time::ZERO);
            server_conn.insert(server, conn_idx);
        }
        let spec = IncastSpec { client, servers, object_bytes, fanout, requests };
        stack.set_incast(spec, server_conn, self.seed);

        let mut queue: EventQueue<Event> = EventQueue::with_capacity(1 << 16);
        stack.bootstrap(&mut |host, tok, at| {
            queue.push(at, Event::HostTimer { host, token: tok });
        });
        if matches!(self.scheme, Scheme::Hula) {
            queue.push(Time::ZERO, Event::HulaTick);
        }

        let mut net = Network::new(topo.fabric, stack);
        let summary = run_to_completion(&mut net, &mut queue, self.horizon);
        let (rounds, elapsed) = net.hosts.incast_result().expect("incast configured");
        let bytes = rounds as u64 * object_bytes;
        let goodput_bps = if elapsed.is_zero() {
            0.0
        } else {
            bytes as f64 * 8.0 / elapsed.as_secs_f64()
        };
        IncastOutcome {
            goodput_bps,
            rounds,
            sim_time: summary.end_time,
            events: summary.events,
            timeouts: net.hosts.stats.timeouts,
        }
    }
}

/// Drive the network until all jobs complete or the horizon passes.
fn run_to_completion(
    net: &mut Network<HostStack>,
    queue: &mut EventQueue<Event>,
    horizon: Time,
) -> clove_sim::RunSummary {
    let chunk = Duration::from_millis(50);
    let mut upto = Time::ZERO + chunk;
    let mut total = clove_sim::RunSummary { events: 0, end_time: Time::ZERO, hit_horizon: false };
    loop {
        let s = clove_sim::run(net, queue, upto.min(horizon));
        total.events += s.events;
        total.end_time = total.end_time.max(s.end_time);
        total.hit_horizon = s.hit_horizon;
        let done = net.hosts.fct.completed() as u64 >= net.hosts.total_jobs;
        if done || !s.hit_horizon || upto >= horizon {
            return total;
        }
        upto = upto + chunk;
    }
}

/// Results of one RPC run.
#[derive(Debug, Clone)]
pub struct RpcOutcome {
    /// FCT summaries (all / mice / elephants / p99).
    pub fct: FctSummary,
    /// Simulated time at the last event.
    pub sim_time: Time,
    /// Events processed.
    pub events: u64,
    /// Packets dropped in the fabric.
    pub drops: u64,
    /// CE marks applied.
    pub ecn_marks: u64,
    /// TCP timeouts.
    pub timeouts: u64,
    /// TCP retransmissions (all kinds).
    pub retransmits: u64,
    /// Fast retransmissions.
    pub fast_retransmits: u64,
    /// Spurious retransmissions undone (DSACK).
    pub spurious_undos: u64,
    /// Discovery updates installed.
    pub path_updates: u64,
    /// Diagnostic lines for connections that never drained.
    pub stalled: Vec<String>,
    /// Per-fabric-link utilization diagnostics.
    pub link_report: Vec<String>,
}

/// Summarize switch-to-switch link usage (diagnostics).
fn link_report(fabric: &clove_net::Fabric) -> Vec<String> {
    fabric
        .links
        .iter()
        .filter(|l| matches!((l.from, l.to), (NodeId::Switch(_), NodeId::Switch(_))))
        .map(|l| {
            format!(
                "{:?}->{:?} {} tx={}MB drops={} marks={} maxq={}KB",
                l.from,
                l.to,
                if l.up { "up" } else { "DOWN" },
                l.stats.tx_bytes / 1_000_000,
                l.stats.drops_overflow,
                l.stats.ecn_marks,
                l.stats.max_queue_bytes / 1024,
            )
        })
        .collect()
}

/// Results of one incast run.
#[derive(Debug, Clone, Copy)]
pub struct IncastOutcome {
    /// Client receive goodput in bits/second.
    pub goodput_bps: f64,
    /// Completed request rounds.
    pub rounds: u32,
    /// Simulated time at the last event.
    pub sim_time: Time,
    /// Events processed.
    pub events: u64,
    /// TCP timeouts.
    pub timeouts: u64,
}
