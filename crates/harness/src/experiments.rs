//! One function per paper figure, plus the parallel experiment engine.
//!
//! Every function returns a [`FigureTable`] whose series reproduce the
//! corresponding plot. The `scale` knob trades fidelity for wall-clock
//! time: it multiplies the job count per connection (the paper runs 50 K
//! jobs per connection on the testbed and 20 K in NS2; full-fidelity runs
//! of this reproduction use hundreds to thousands — enough for the
//! qualitative ordering, as EXPERIMENTS.md documents). Benches use tiny
//! scales.
//!
//! ## Parallelism and determinism
//!
//! Each `(scheme, load/fanout/case, seed)` cell is an independent
//! simulation: the determinism contract in `clove-sim` is *per run*, so
//! cells can execute on any worker in any order. All figure drivers funnel
//! through [`run_matrix`] (directly, or via the fault-tolerant
//! [`orchestrator`](crate::orchestrator) wrappers), which hands back
//! results **in cell order** regardless of completion order, and every
//! fold below consumes them in that order (seed merges, goodput sums,
//! fault-stat absorbs). Output is therefore byte-identical at any
//! [`ExpConfig::jobs`] setting — the regression test
//! `determinism_parallel.rs` pins this.
//!
//! ## Fault tolerance and resume
//!
//! Figure drivers execute through [`run_cells`], which adds the
//! orchestrator's fault model on top of the fan-out: panicking cells are
//! retried then quarantined ([`ExpConfig::exec`]), stalled cells are
//! cancelled by the watchdog, and — when [`ExpConfig::journal`] is set —
//! completed cells are checkpointed so an interrupted run resumes without
//! re-executing them. Quarantined cells surface as `NaN` data points plus
//! an explicit per-cell line in the table's `quarantined` list; they are
//! never silently dropped. Journal values round-trip losslessly (see
//! [`crate::journal`]), so a resumed run's CSVs are byte-identical to an
//! uninterrupted one at any `--jobs` width.

use crate::journal::{self, JournalValue};
use crate::json::Json;
use crate::orchestrator::{self, CellOutcome, ExecPolicy, MatrixStats};
use crate::report::{FeedbackRow, FeedbackTable, FigureTable, ResilienceRow, ResilienceTable};
use crate::scenario::{RpcOutcome, Scenario, TopologyKind};
use crate::scheme::Scheme;
use clove_net::fault::{CableSelector, ControlFaultPlan, ControlFaultStats, FaultPlan, FaultStats, NodeSelector, NodeState};
use clove_sim::{Duration, QueueBackend, RunControl, Time};
use clove_workload::{web_search, FctSummary, FlowSizeDist};
use rayon::prelude::*;
use std::sync::Arc;

/// Shared experiment sizing.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Jobs per client connection.
    pub jobs_per_conn: u32,
    /// Connections per client.
    pub conns_per_client: u32,
    /// Seeds to average over (paper: 3).
    pub seeds: u32,
    /// Simulated-time ceiling per run.
    pub horizon_secs: u64,
    /// Worker threads for the experiment matrix (1 = serial). Output is
    /// identical at any setting; see the module docs.
    pub jobs: usize,
    /// Run every cell under the [`crate::invariants::InvariantMonitor`]
    /// and panic on any violation (`figures --strict`, integration tests).
    pub strict: bool,
    /// Cell execution policy: panic isolation, retry budget, stall
    /// deadline (see [`crate::orchestrator`]).
    pub exec: ExecPolicy,
    /// Completed-cell journal for checkpoint/resume; `None` disables
    /// journaling (cells always execute).
    pub journal: Option<Arc<crate::journal::Journal>>,
    /// Event-queue backend every cell runs on: the timing wheel (default)
    /// or the legacy binary heap (`--queue heap`), kept as a
    /// differential-testing oracle. Results are backend-independent, so
    /// the backend is *not* part of the journal key.
    pub queue: QueueBackend,
}

impl ExpConfig {
    /// A configuration suitable for generating the committed figures.
    pub fn full() -> ExpConfig {
        ExpConfig {
            jobs_per_conn: 80,
            conns_per_client: 2,
            seeds: 2,
            horizon_secs: 60,
            jobs: 1,
            strict: false,
            exec: ExecPolicy::default(),
            journal: None,
            queue: QueueBackend::default(),
        }
    }

    /// A tiny configuration for benches and CI smoke tests.
    pub fn quick() -> ExpConfig {
        ExpConfig {
            jobs_per_conn: 8,
            conns_per_client: 1,
            seeds: 1,
            horizon_secs: 10,
            jobs: 1,
            strict: false,
            exec: ExecPolicy::default(),
            journal: None,
            queue: QueueBackend::default(),
        }
    }

    /// The same configuration with a different worker count.
    pub fn with_jobs(mut self, jobs: usize) -> ExpConfig {
        self.jobs = jobs.max(1);
        self
    }

    /// The same configuration with strict invariant checking toggled.
    pub fn with_strict(mut self, strict: bool) -> ExpConfig {
        self.strict = strict;
        self
    }

    /// The same configuration with a different cell execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> ExpConfig {
        self.exec = exec;
        self
    }

    /// The same configuration with a checkpoint journal installed.
    pub fn with_journal(mut self, journal: Option<Arc<crate::journal::Journal>>) -> ExpConfig {
        self.journal = journal;
        self
    }

    /// The same configuration on a different event-queue backend.
    pub fn with_queue(mut self, queue: QueueBackend) -> ExpConfig {
        self.queue = queue;
        self
    }

    /// The journal-key fragment for the shared sizing knobs: everything
    /// that changes a cell's *result* except the per-cell parameters.
    /// `jobs` is deliberately excluded — results are jobs-independent, so
    /// a journal written at `--jobs 1` resumes correctly at `--jobs 8` —
    /// and so is `seeds`, because the seed itself is a cell parameter.
    pub fn key_fragment(&self) -> String {
        format!("jpc{}|cpc{}|h{}|strict{}", self.jobs_per_conn, self.conns_per_client, self.horizon_secs, self.strict)
    }
}

/// Run every cell of an experiment matrix, on `jobs` worker threads, and
/// return the results **in cell order** (never completion order).
///
/// This is the raw fan-out primitive: no panic isolation, no journal — a
/// panicking cell aborts the matrix. Figure drivers use [`run_cells`] on
/// top of it; benches and other hot paths that want zero overhead use it
/// directly. Each cell must be an independent simulation run — the per-run
/// determinism contract makes that safe — and because results come back in
/// input order, any fold written against the serial runner produces
/// identical bytes against the parallel one.
pub fn run_matrix<K, R, F>(cells: &[K], jobs: usize, run: F) -> Vec<R>
where
    K: Sync,
    R: Send,
    F: Fn(&K) -> R + Send + Sync,
{
    if jobs <= 1 || cells.len() <= 1 {
        return cells.iter().map(run).collect();
    }
    let pool = rayon::ThreadPoolBuilder::new().num_threads(jobs).build().expect("build worker pool");
    pool.install(|| cells.par_iter().map(run).collect())
}

/// The fault-tolerant fan-out every figure driver funnels through:
/// [`run_matrix`] plus the orchestrator's panic isolation, retry,
/// stall watchdog, and (when configured) the checkpoint journal under
/// `scope`.
///
/// `cost` estimates each cell's relative wall time; the orchestrator
/// starts the most expensive cells first so a long cell never becomes the
/// matrix tail at `jobs > 1` (outcomes stay in cell order regardless).
fn run_cells<K, R, F>(
    scope: &str,
    cells: &[K],
    cfg: &ExpConfig,
    cost: impl Fn(&K) -> f64,
    key: impl Fn(&K) -> String + Send + Sync,
    run: F,
) -> (Vec<CellOutcome<R>>, MatrixStats)
where
    K: Sync,
    R: Send + JournalValue,
    F: Fn(&K, &Arc<RunControl>) -> R + Send + Sync,
{
    let costs: Vec<f64> = cells.iter().map(cost).collect();
    let (outcomes, stats) = orchestrator::run_journaled(cells, cfg.jobs, cfg.exec, Some(&costs), cfg.journal.as_deref().map(|j| (j, scope)), key, run);
    // Orchestrator-level wall-clock profiling (`CLOVE_PROFILE=1`): stderr
    // only, so stdout tables/CSVs stay byte-identical at any `--jobs`. The
    // timings come from the allowlisted orchestrator; this module only
    // formats them.
    if stats.executed > 0 && std::env::var_os("CLOVE_PROFILE").is_some() {
        // clove-lint: allow(stdout-in-lib): opt-in stderr profiling line; stdout reports stay byte-identical
        eprintln!("profile: [{scope}] {}", stats.profile_line());
    }
    (outcomes, stats)
}

/// The oracle Presto weights for the asymmetric topology (paper §5.2:
/// 0.33/0.33/0.17/0.17 — full weight on the two healthy S1 paths, half on
/// the S2 paths that share the surviving S2–L2 cable).
pub fn presto_oracle_weights(topology: TopologyKind) -> Option<Vec<f64>> {
    match topology {
        TopologyKind::Asymmetric => Some(vec![0.33, 0.33, 0.17, 0.17]),
        _ => None,
    }
}

fn scenario(scheme: Scheme, topology: TopologyKind, load: f64, seed: u64, cfg: &ExpConfig, control: Option<&Arc<RunControl>>) -> Scenario {
    let mut s = Scenario::new(scheme, topology, load, seed);
    s.jobs_per_conn = cfg.jobs_per_conn;
    s.conns_per_client = cfg.conns_per_client;
    s.horizon = Time::from_secs(cfg.horizon_secs);
    s.strict = cfg.strict;
    s.control = control.map(Arc::clone);
    s.queue = cfg.queue;
    s
}

/// Run one scenario, failing loudly on strict-mode invariant violations
/// (the outcome carries them only when the scenario ran strict). Every
/// figure/ablation driver funnels its RPC runs through here so `--strict`
/// covers the whole experiment surface. Under [`run_cells`] the panic is
/// caught and the cell quarantined with this message.
fn run_rpc_checked(s: &Scenario, dist: &FlowSizeDist) -> RpcOutcome {
    let out = s.run_rpc(dist);
    assert!(out.violations.is_empty(), "invariant violations in {} (seed {}): {:#?}", s.scheme.label(), s.seed, out.violations);
    out
}

/// A stable tag for journal keys and quarantine labels.
fn topology_tag(topology: TopologyKind) -> String {
    match topology {
        TopologyKind::Symmetric => "sym".into(),
        TopologyKind::Asymmetric => "asym".into(),
        TopologyKind::FatTree { k } => format!("fattree{k}"),
    }
}

/// Where quarantined-cell telemetry snapshots land.
const TELEMETRY_SNAPSHOT_DIR: &str = "results/telemetry";

/// A filesystem-safe slug: alphanumerics, `.`, `_` and `-` pass through,
/// every other run of characters collapses to one `-`.
fn path_slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
            out.push(c);
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// The `clove-run` spec for one RPC cell: the replay payload embedded in
/// quarantine snapshots so the failed cell can be re-run under `--trace`.
/// `None` for ablation-only schemes the spec format cannot express (their
/// snapshots fall back to a `figures` repro command).
fn rpc_cell_spec(scheme: &Scheme, topology: TopologyKind, load: f64, seed: u64, cfg: &ExpConfig) -> Option<Json> {
    let scheme_json = match scheme {
        Scheme::Ecmp => Json::Obj(vec![("name".to_string(), Json::Str("ecmp".to_string()))]),
        Scheme::EdgeFlowlet => Json::Obj(vec![("name".to_string(), Json::Str("edge-flowlet".to_string()))]),
        Scheme::CloveEcn => Json::Obj(vec![("name".to_string(), Json::Str("clove-ecn".to_string()))]),
        Scheme::CloveInt => Json::Obj(vec![("name".to_string(), Json::Str("clove-int".to_string()))]),
        Scheme::CloveLatency { adaptive_gap } => {
            Json::Obj(vec![("name".to_string(), Json::Str("clove-latency".to_string())), ("adaptive_gap".to_string(), Json::Bool(*adaptive_gap))])
        }
        Scheme::Presto { oracle_weights } => Json::Obj(vec![
            ("name".to_string(), Json::Str("presto".to_string())),
            ("weights".to_string(), oracle_weights.as_ref().map(|w| Json::Arr(w.iter().map(|&x| Json::Num(x)).collect())).unwrap_or(Json::Null)),
        ]),
        Scheme::Mptcp { subflows } => {
            Json::Obj(vec![("name".to_string(), Json::Str("mptcp".to_string())), ("subflows".to_string(), Json::Num(*subflows as f64))])
        }
        Scheme::Conga => Json::Obj(vec![("name".to_string(), Json::Str("conga".to_string()))]),
        Scheme::LetFlow => Json::Obj(vec![("name".to_string(), Json::Str("let-flow".to_string()))]),
        Scheme::Hula => Json::Obj(vec![("name".to_string(), Json::Str("hula".to_string()))]),
        Scheme::Incremental { clove_hosts } => {
            Json::Obj(vec![("name".to_string(), Json::Str("incremental".to_string())), ("clove_hosts".to_string(), Json::Num(*clove_hosts as f64))])
        }
        _ => return None,
    };
    let topology_json = match topology {
        TopologyKind::Symmetric => Json::Obj(vec![("kind".to_string(), Json::Str("symmetric".to_string()))]),
        TopologyKind::Asymmetric => Json::Obj(vec![("kind".to_string(), Json::Str("asymmetric".to_string()))]),
        TopologyKind::FatTree { k } => Json::Obj(vec![("kind".to_string(), Json::Str("fat-tree".to_string())), ("k".to_string(), Json::Num(k as f64))]),
    };
    Some(Json::Obj(vec![
        ("scheme".to_string(), scheme_json),
        ("topology".to_string(), topology_json),
        ("load".to_string(), Json::Num(load)),
        ("jobs_per_conn".to_string(), Json::Num(cfg.jobs_per_conn as f64)),
        ("conns_per_client".to_string(), Json::Num(cfg.conns_per_client as f64)),
        ("seed".to_string(), Json::Num(seed as f64)),
        ("seeds".to_string(), Json::Num(1.0)),
        ("horizon_secs".to_string(), Json::Num(cfg.horizon_secs as f64)),
        ("strict".to_string(), Json::Bool(cfg.strict)),
    ]))
}

/// Persist a telemetry snapshot for a quarantined cell under
/// [`TELEMETRY_SNAPSHOT_DIR`] and return a footer suffix naming it (empty
/// when the write fails — the footer then carries the reason alone).
///
/// Snapshots are written only when a cell is quarantined, so clean runs
/// create no files and figure output stays byte-identical. When the cell
/// is a plain RPC point its spec is embedded at the snapshot's top level;
/// `ScenarioSpec` parsing ignores the extra `quarantine` object, so the
/// snapshot file itself is a valid `clove-run` input and the recorded
/// repro command replays exactly the failed seed with `--trace` on.
fn quarantine_snapshot(scope: &str, cell: &str, seed: u64, reason: &str, spec: Option<Json>) -> String {
    let name = format!("{}-seed{seed}", path_slug(&format!("{scope}-{cell}")));
    let path = format!("{TELEMETRY_SNAPSHOT_DIR}/{name}.json");
    let repro = match &spec {
        Some(_) => format!("cargo run --release -p clove-harness --bin clove-run -- {path} --trace {TELEMETRY_SNAPSHOT_DIR}/{name}.trace.jsonl"),
        None => format!("cargo run --release -p clove-bench --bin figures -- {scope} --strict --jobs 1"),
    };
    let meta = Json::Obj(vec![
        ("scope".to_string(), Json::Str(scope.to_string())),
        ("cell".to_string(), Json::Str(cell.to_string())),
        ("seed".to_string(), Json::Num(seed as f64)),
        ("reason".to_string(), Json::Str(reason.to_string())),
        ("repro".to_string(), Json::Str(repro)),
    ]);
    let mut fields = match spec {
        Some(Json::Obj(fields)) => fields,
        _ => Vec::new(),
    };
    fields.push(("quarantine".to_string(), meta));
    match journal::write_atomic(std::path::Path::new(&path), &(Json::Obj(fields).render_pretty() + "\n")) {
        Ok(()) => format!(" (snapshot: {path})"),
        Err(e) => {
            // clove-lint: allow(stdout-in-lib): best-effort stderr warning on an already-failing path
            eprintln!("telemetry: cannot write quarantine snapshot {path}: {e}");
            String::new()
        }
    }
}

/// Run one (scheme, topology, load) point over the configured seeds and
/// pool the FCT samples.
pub fn rpc_point(scheme: &Scheme, topology: TopologyKind, load: f64, cfg: &ExpConfig) -> FctSummary {
    rpc_point_detailed(scheme, topology, load, cfg).0
}

/// [`rpc_point`] also reporting the total simulation events processed
/// across the seeds (the denominator for events/sec benchmarks).
///
/// Seeds run as parallel cells at `cfg.jobs > 1`; the FCT merge happens
/// in seed order either way. This is the *loud* path — no isolation, no
/// journal — used by benches (where orchestration overhead would pollute
/// timings) and headline runs that want a panic to propagate.
pub fn rpc_point_detailed(scheme: &Scheme, topology: TopologyKind, load: f64, cfg: &ExpConfig) -> (FctSummary, u64) {
    let dist = web_search();
    let seeds: Vec<u64> = (0..cfg.seeds).map(|s| 1000 + s as u64).collect();
    let outs = run_matrix(&seeds, cfg.jobs, |&seed| {
        let s = scenario(scheme.clone(), topology, load, seed, cfg, None);
        let out = run_rpc_checked(&s, &dist);
        (out.fct, out.events)
    });
    let mut pooled: Option<FctSummary> = None;
    let mut events = 0u64;
    for (fct, ev) in outs {
        events += ev;
        match pooled.as_mut() {
            None => pooled = Some(fct),
            Some(p) => p.merge(&fct),
        }
    }
    (pooled.expect("at least one seed"), events)
}

type PointKey = (String, bool, u64);

/// Memoizes RPC point results so figures sharing the same underlying
/// runs (4c with 5a/5b/5c, 8b with 9) pay for them once.
///
/// A `None` entry is a *quarantined* point: at least one of its seed runs
/// panicked or stalled, so the point has no trustworthy value. The
/// per-seed reasons are kept in `quarantined` and surface in figure
/// footers.
#[derive(Default)]
pub struct PointCache {
    entries: rustc_hash::FxHashMap<PointKey, Option<FctSummary>>,
    quarantined: rustc_hash::FxHashMap<PointKey, Vec<String>>,
    /// Total simulation events processed by runs charged to this cache
    /// (cache hits and journal hits add nothing — the run already
    /// happened).
    pub events: u64,
}

impl PointCache {
    /// An empty cache.
    pub fn new() -> PointCache {
        PointCache::default()
    }

    fn key(scheme: &Scheme, topology: TopologyKind, load: f64) -> PointKey {
        (scheme.label().to_string(), topology == TopologyKind::Asymmetric, (load * 1000.0).round() as u64)
    }

    /// Fetch or compute a point; `None` means the point is quarantined
    /// (see [`PointCache::quarantine_lines`] for why).
    pub fn point(&mut self, scheme: &Scheme, topology: TopologyKind, load: f64, cfg: &ExpConfig) -> Option<FctSummary> {
        self.prefetch(std::slice::from_ref(scheme), topology, &[load], cfg);
        self.entries.get(&Self::key(scheme, topology, load)).cloned().flatten()
    }

    /// The per-seed quarantine reasons for a point (empty when the point
    /// completed cleanly).
    pub fn quarantine_lines(&self, scheme: &Scheme, topology: TopologyKind, load: f64) -> &[String] {
        self.quarantined.get(&Self::key(scheme, topology, load)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Compute every missing `(scheme, load)` point of a figure in one flat
    /// `(scheme, load, seed)` fan-out, so parallelism spans the whole
    /// matrix rather than just the seeds of one point.
    ///
    /// Results are folded grouped in cell order (scheme-major, then load,
    /// then seed) — exactly the order the serial [`point`] path merges in,
    /// so a prefetched cache is indistinguishable from a serially filled
    /// one. A point with any quarantined seed becomes a `None` entry: a
    /// partial seed pool would silently shift the statistics.
    ///
    /// [`point`]: PointCache::point
    pub fn prefetch(&mut self, schemes: &[Scheme], topology: TopologyKind, loads: &[f64], cfg: &ExpConfig) {
        let mut missing: Vec<(usize, f64)> = Vec::new();
        for (si, scheme) in schemes.iter().enumerate() {
            for &load in loads {
                let key = Self::key(scheme, topology, load);
                if !self.entries.contains_key(&key) && !missing.iter().any(|&(mi, ml)| Self::key(&schemes[mi], topology, ml) == key) {
                    missing.push((si, load));
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        let dist = web_search();
        let cells: Vec<(usize, f64, u64)> = missing.iter().flat_map(|&(si, load)| (0..cfg.seeds).map(move |s| (si, load, 1000 + s as u64))).collect();
        let (outcomes, _) = run_cells(
            "rpc",
            &cells,
            cfg,
            // Heavier schemes at higher load run longest (fig8b/fig9's
            // CONGA @ 90% cell dominates the matrix) — start them first.
            |&(si, load, _)| schemes[si].cost_weight() * (1.0 + load),
            |&(si, load, seed)| {
                format!("rpc|{}|{}|load{}|seed{}|{}", schemes[si].label(), topology_tag(topology), (load * 1000.0).round() as u64, seed, cfg.key_fragment())
            },
            |&(si, load, seed), control| {
                let s = scenario(schemes[si].clone(), topology, load, seed, cfg, Some(control));
                let out = run_rpc_checked(&s, &dist);
                (out.fct, out.events)
            },
        );
        let per_point = cfg.seeds as usize;
        for (pi, &(si, load)) in missing.iter().enumerate() {
            let mut pooled: Option<FctSummary> = None;
            let mut bad = Vec::new();
            for (off, outcome) in outcomes[pi * per_point..(pi + 1) * per_point].iter().enumerate() {
                match outcome {
                    CellOutcome::Ok((fct, events)) => {
                        self.events += events;
                        match pooled.as_mut() {
                            None => pooled = Some(fct.clone()),
                            Some(p) => p.merge(fct),
                        }
                    }
                    other => {
                        let cell = format!("{} @ {:.0}% load ({})", schemes[si].label(), load * 100.0, topology_tag(topology));
                        let seed = 1000 + off as u64;
                        let spec = rpc_cell_spec(&schemes[si], topology, load, seed, cfg);
                        let snap = quarantine_snapshot("rpc", &cell, seed, &other.describe(), spec);
                        bad.push(format!("{cell} seed {seed}: {}{snap}", other.describe()));
                    }
                }
            }
            let key = Self::key(&schemes[si], topology, load);
            if bad.is_empty() {
                self.entries.insert(key, Some(pooled.expect("at least one seed")));
            } else {
                self.quarantined.insert(key.clone(), bad);
                self.entries.insert(key, None);
            }
        }
    }
}

/// The paper's testbed scheme set (Figures 4–6).
pub fn testbed_schemes(topology: TopologyKind) -> Vec<Scheme> {
    vec![Scheme::Ecmp, Scheme::EdgeFlowlet, Scheme::CloveEcn, Scheme::Mptcp { subflows: 4 }, Scheme::Presto { oracle_weights: presto_oracle_weights(topology) }]
}

/// The paper's simulation scheme set (Figures 8–9).
pub fn sim_schemes() -> Vec<Scheme> {
    vec![Scheme::Ecmp, Scheme::EdgeFlowlet, Scheme::CloveEcn, Scheme::CloveInt, Scheme::Conga]
}

/// Figure 4b: symmetric topology, average FCT vs load.
pub fn fig4b(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig4b_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig4b`] reusing a shared run cache.
pub fn fig4b_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 4b — testbed symmetric, avg FCT (s)", TopologyKind::Symmetric, &testbed_schemes(TopologyKind::Symmetric), loads, cfg, cache, |s| s.avg())
}

/// Figure 4c: asymmetric topology, average FCT vs load.
pub fn fig4c(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig4c_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig4c`] reusing a shared run cache.
pub fn fig4c_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 4c — testbed asymmetric, avg FCT (s)", TopologyKind::Asymmetric, &testbed_schemes(TopologyKind::Asymmetric), loads, cfg, cache, |s| {
        s.avg()
    })
}

/// Figure 5a: asymmetric, average FCT of mice (<100 KB) vs load.
pub fn fig5a(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig5a_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig5a`] reusing a shared run cache.
pub fn fig5a_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure(
        "Fig 5a — asymmetric, mice (<100KB) avg FCT (s)",
        TopologyKind::Asymmetric,
        &testbed_schemes(TopologyKind::Asymmetric),
        loads,
        cfg,
        cache,
        |s| s.mice.mean(),
    )
}

/// Figure 5b: asymmetric, average FCT of elephants (>10 MB) vs load.
pub fn fig5b(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig5b_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig5b`] reusing a shared run cache.
pub fn fig5b_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure(
        "Fig 5b — asymmetric, elephants (>10MB) avg FCT (s)",
        TopologyKind::Asymmetric,
        &testbed_schemes(TopologyKind::Asymmetric),
        loads,
        cfg,
        cache,
        |s| s.elephants.mean(),
    )
}

/// Figure 5c: asymmetric, 99th-percentile FCT vs load.
pub fn fig5c(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig5c_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig5c`] reusing a shared run cache.
pub fn fig5c_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 5c — asymmetric, p99 FCT (s)", TopologyKind::Asymmetric, &testbed_schemes(TopologyKind::Asymmetric), loads, cfg, cache, |s| s.p99())
}

/// Figure 6: Clove-ECN parameter sensitivity on the asymmetric topology.
/// Series: (flowlet-gap multiplier × RTT, ECN threshold in packets).
pub fn fig6(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    let variants: [(&str, f64, u32); 4] =
        [("Clove-best (1*RTT, 20pkts)", 1.0, 20), ("Clove (0.2*RTT, 20pkts)", 0.2, 20), ("Clove (5*RTT, 20pkts)", 5.0, 20), ("Clove (1*RTT, 40pkts)", 1.0, 40)];
    let dist = web_search();
    // Flat (variant, load, seed) cells, folded variant-major in cell order.
    let cells: Vec<(usize, f64, u64)> =
        (0..variants.len()).flat_map(|vi| loads.iter().flat_map(move |&load| (0..cfg.seeds).map(move |s| (vi, load, 2000 + s as u64)))).collect();
    let (outcomes, _) = run_cells(
        "fig6",
        &cells,
        cfg,
        // Same scheme everywhere: cost scales with offered load alone.
        |&(_, load, _)| 1.0 + load,
        |&(vi, load, seed)| format!("fig6|{}|load{}|seed{}|{}", variants[vi].0, (load * 1000.0).round() as u64, seed, cfg.key_fragment()),
        |&(vi, load, seed), control| {
            let (_, gap_mult, ecn_pkts) = variants[vi];
            let mut s = scenario(Scheme::CloveEcn, TopologyKind::Asymmetric, load, seed, cfg, Some(control));
            // Multipliers are relative to the default gap (≈ the loaded RTT,
            // the paper's "1×RTT best" operating point).
            s.profile.flowlet_gap = Duration::from_secs_f64(s.profile.flowlet_gap.as_secs_f64() * gap_mult);
            s.profile.ecn_threshold_pkts = ecn_pkts;
            run_rpc_checked(&s, &dist).fct
        },
    );
    let mut table = FigureTable::new("Fig 6 — Clove-ECN parameter sensitivity, asymmetric, avg FCT (s)", "load %", loads.iter().map(|l| l * 100.0).collect());
    let per_point = cfg.seeds as usize;
    let mut chunks = outcomes.chunks(per_point);
    for (name, _, _) in variants {
        let mut ys = Vec::new();
        for &load in loads {
            let chunk = chunks.next().expect("cell count matches variants × loads");
            let mut pooled: Option<FctSummary> = None;
            let mut bad = Vec::new();
            for (off, outcome) in chunk.iter().enumerate() {
                match outcome {
                    CellOutcome::Ok(fct) => match pooled.as_mut() {
                        None => pooled = Some(fct.clone()),
                        Some(p) => p.merge(fct),
                    },
                    other => {
                        let cell = format!("{name} @ {:.0}% load", load * 100.0);
                        let seed = 2000 + off as u64;
                        let snap = quarantine_snapshot("fig6", &cell, seed, &other.describe(), None);
                        bad.push(format!("{cell} seed {seed}: {}{snap}", other.describe()));
                    }
                }
            }
            if bad.is_empty() {
                ys.push(pooled.expect("seed ran").avg());
            } else {
                ys.push(f64::NAN);
                table.quarantined.extend(bad);
            }
        }
        table.push_series(name, ys);
    }
    table
}

/// Figure 7: incast — client goodput (Gbps) vs request fan-in.
pub fn fig7(fanouts: &[u32], requests: u32, cfg: &ExpConfig) -> FigureTable {
    let schemes = [Scheme::CloveEcn, Scheme::EdgeFlowlet, Scheme::Mptcp { subflows: 4 }];
    // Flat (scheme, fanout, seed) cells, folded scheme-major in cell order.
    let cells: Vec<(usize, u32, u64)> =
        (0..schemes.len()).flat_map(|si| fanouts.iter().flat_map(move |&fanout| (0..cfg.seeds).map(move |s| (si, fanout, 3000 + s as u64)))).collect();
    let (outcomes, _) = run_cells(
        "fig7",
        &cells,
        cfg,
        // Incast cost grows with fan-in (more servers, more packets).
        |&(si, fanout, _)| schemes[si].cost_weight() * fanout as f64,
        |&(si, fanout, seed)| format!("fig7|{}|fanout{fanout}|req{requests}|seed{seed}|{}", schemes[si].label(), cfg.key_fragment()),
        |&(si, fanout, seed), control| {
            let s = scenario(schemes[si].clone(), TopologyKind::Symmetric, 0.5, seed, cfg, Some(control));
            let out = s.run_incast(fanout, requests, 10_000_000);
            assert!(out.invariant_violations == 0, "{} invariant violations in incast {} (seed {})", out.invariant_violations, schemes[si].label(), seed);
            out.goodput_bps / 1e9
        },
    );
    let mut table = FigureTable::new("Fig 7 — incast: client goodput (Gbps) vs request fan-in", "fan-in", fanouts.iter().map(|&f| f as f64).collect());
    let per_point = cfg.seeds as usize;
    let mut chunks = outcomes.chunks(per_point);
    for scheme in &schemes {
        let mut ys = Vec::new();
        for &fanout in fanouts {
            let chunk = chunks.next().expect("cell count matches schemes × fanouts");
            let mut sum = 0.0;
            let mut bad = Vec::new();
            for (off, outcome) in chunk.iter().enumerate() {
                match outcome {
                    CellOutcome::Ok(gbps) => sum += gbps,
                    other => {
                        let cell = format!("{} @ fan-in {fanout}", scheme.label());
                        let seed = 3000 + off as u64;
                        let snap = quarantine_snapshot("fig7", &cell, seed, &other.describe(), None);
                        bad.push(format!("{cell} seed {seed}: {}{snap}", other.describe()));
                    }
                }
            }
            if bad.is_empty() {
                ys.push(sum / cfg.seeds as f64);
            } else {
                ys.push(f64::NAN);
                table.quarantined.extend(bad);
            }
        }
        table.push_series(scheme.label(), ys);
    }
    table
}

/// Figure 8a: simulation scheme set, symmetric topology, avg FCT vs load.
pub fn fig8a(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig8a_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig8a`] reusing a shared run cache.
pub fn fig8a_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 8a — sim symmetric, avg FCT (s)", TopologyKind::Symmetric, &sim_schemes(), loads, cfg, cache, |s| s.avg())
}

/// Figure 8b: simulation scheme set, asymmetric topology, avg FCT vs load.
pub fn fig8b(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig8b_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig8b`] reusing a shared run cache.
pub fn fig8b_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 8b — sim asymmetric, avg FCT (s)", TopologyKind::Asymmetric, &sim_schemes(), loads, cfg, cache, |s| s.avg())
}

/// Figure 9: CDFs of mice FCTs at 70% load on the asymmetric topology for
/// ECMP, Clove-ECN, CONGA. Returns `(scheme, cdf points)` triples; a
/// quarantined scheme yields an empty point list and a `[quarantined]`
/// label suffix rather than aborting the figure.
pub fn fig9(cfg: &ExpConfig) -> Vec<(String, Vec<(f64, f64)>)> {
    fig9_cached(cfg, &mut PointCache::new())
}

/// [`fig9`] reusing a shared run cache.
pub fn fig9_cached(cfg: &ExpConfig, cache: &mut PointCache) -> Vec<(String, Vec<(f64, f64)>)> {
    let schemes = [Scheme::Ecmp, Scheme::CloveEcn, Scheme::Conga];
    cache.prefetch(&schemes, TopologyKind::Asymmetric, &[0.7], cfg);
    schemes
        .into_iter()
        .map(|scheme| {
            let label = scheme.label().to_string();
            match cache.point(&scheme, TopologyKind::Asymmetric, 0.7, cfg) {
                Some(mut s) => (label, s.mice_cdf(40)),
                None => (format!("{label} [quarantined]"), Vec::new()),
            }
        })
        .collect()
}

/// One fault case of the resilience sweep. Every case hits the paper's
/// S2–L2 cable ([`CableSelector::S2_L2`]) mid-run on the otherwise
/// symmetric testbed topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCase {
    /// No fault — the per-scheme baseline the others are normalized to.
    Clean,
    /// One announced cut, never restored (the paper's asymmetry, but
    /// arriving mid-run).
    SingleCut,
    /// A silent flap: repeated down/up cycles the control plane never
    /// sees — the gray failure edge probing exists for.
    Flapping,
    /// Line rate silently halved.
    Degraded,
    /// 1% silent stochastic packet loss.
    RandomLoss,
}

impl FaultCase {
    /// Every case, clean first (the sweep relies on that ordering to have
    /// the baseline before computing degradations).
    pub const ALL: [FaultCase; 5] = [FaultCase::Clean, FaultCase::SingleCut, FaultCase::Flapping, FaultCase::Degraded, FaultCase::RandomLoss];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            FaultCase::Clean => "clean",
            FaultCase::SingleCut => "single-cut",
            FaultCase::Flapping => "flapping",
            FaultCase::Degraded => "50%-degraded",
            FaultCase::RandomLoss => "1%-loss",
        }
    }

    /// The fault timeline for this case, anchored at `at`. Flap cycles are
    /// sized in probe intervals so the detection race (blackhole_rounds
    /// consecutive truncated rounds vs. the down span) scales with the
    /// profile: down for 4 intervals, up for 2, twice.
    pub fn plan(self, at: Time, probe_interval: Duration) -> FaultPlan {
        let cable = CableSelector::S2_L2;
        match self {
            FaultCase::Clean => FaultPlan::none(),
            FaultCase::SingleCut => FaultPlan::cut(at, cable),
            FaultCase::Flapping => FaultPlan::flap(at, cable, probe_interval * 6, 2.0 / 3.0, 2),
            FaultCase::Degraded => FaultPlan::degrade(at, cable, 0.5),
            FaultCase::RandomLoss => FaultPlan::loss(at, cable, 0.01),
        }
    }
}

/// The schemes the resilience sweep covers: the union of the testbed and
/// simulation sets (every scheme the figures exercise, each once).
pub fn resilience_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Ecmp,
        Scheme::EdgeFlowlet,
        Scheme::CloveEcn,
        Scheme::Mptcp { subflows: 4 },
        Scheme::Presto { oracle_weights: None },
        Scheme::CloveInt,
        Scheme::Conga,
    ]
}

/// When the resilience faults land: late enough for a pre-fault FCT
/// baseline, early enough that plenty of traffic runs under the fault.
pub const RESILIENCE_FAULT_AT: Time = Time(20_000_000); // 20 ms

fn fault_stats_to_json(s: &FaultStats) -> Json {
    Json::Obj(vec![
        ("drops_down".into(), s.drops_down.to_journal()),
        ("drops_loss".into(), s.drops_loss.to_journal()),
        ("drops_overflow".into(), s.drops_overflow.to_journal()),
        ("drops_no_route".into(), s.drops_no_route.to_journal()),
        ("down_time_ns".into(), s.down_time.as_nanos().to_journal()),
        ("degraded_time_ns".into(), s.degraded_time.as_nanos().to_journal()),
        ("faults_applied".into(), s.faults_applied.to_journal()),
    ])
}

fn fault_stats_from_json(v: &Json) -> Result<FaultStats, String> {
    Ok(FaultStats {
        drops_down: journal::deu64(journal::field(v, "drops_down")?)?,
        drops_loss: journal::deu64(journal::field(v, "drops_loss")?)?,
        drops_overflow: journal::deu64(journal::field(v, "drops_overflow")?)?,
        drops_no_route: journal::deu64(journal::field(v, "drops_no_route")?)?,
        down_time: Duration::from_nanos(journal::deu64(journal::field(v, "down_time_ns")?)?),
        degraded_time: Duration::from_nanos(journal::deu64(journal::field(v, "degraded_time_ns")?)?),
        faults_applied: journal::deu64(journal::field(v, "faults_applied")?)?,
    })
}

fn control_stats_to_json(s: &ControlFaultStats) -> Json {
    Json::Obj(vec![
        ("probes_dropped".into(), s.probes_dropped.to_journal()),
        ("replies_dropped".into(), s.replies_dropped.to_journal()),
        ("feedback_dropped".into(), s.feedback_dropped.to_journal()),
        ("feedback_delayed".into(), s.feedback_delayed.to_journal()),
        ("feedback_corrupted".into(), s.feedback_corrupted.to_journal()),
        ("control_faults_applied".into(), s.control_faults_applied.to_journal()),
    ])
}

fn control_stats_from_json(v: &Json) -> Result<ControlFaultStats, String> {
    Ok(ControlFaultStats {
        probes_dropped: journal::deu64(journal::field(v, "probes_dropped")?)?,
        replies_dropped: journal::deu64(journal::field(v, "replies_dropped")?)?,
        feedback_dropped: journal::deu64(journal::field(v, "feedback_dropped")?)?,
        feedback_delayed: journal::deu64(journal::field(v, "feedback_delayed")?)?,
        feedback_corrupted: journal::deu64(journal::field(v, "feedback_corrupted")?)?,
        control_faults_applied: journal::deu64(journal::field(v, "control_faults_applied")?)?,
    })
}

/// Per-run payload of one resilience cell, pre-fold.
struct ResilienceRun {
    fct: FctSummary,
    evictions: u64,
    fault_stats: FaultStats,
    recovery: Option<Duration>,
}

impl JournalValue for ResilienceRun {
    fn to_journal(&self) -> Json {
        Json::Obj(vec![
            ("fct".into(), self.fct.to_journal()),
            ("evictions".into(), self.evictions.to_journal()),
            ("fault_stats".into(), fault_stats_to_json(&self.fault_stats)),
            ("recovery".into(), journal::opt_duration_to_json(self.recovery)),
        ])
    }
    fn from_journal(v: &Json) -> Result<ResilienceRun, String> {
        Ok(ResilienceRun {
            fct: FctSummary::from_journal(journal::field(v, "fct")?)?,
            evictions: journal::deu64(journal::field(v, "evictions")?)?,
            fault_stats: fault_stats_from_json(journal::field(v, "fault_stats")?)?,
            recovery: journal::opt_duration_from_json(journal::field(v, "recovery")?)?,
        })
    }
}

/// The resilience sweep: `{clean, single-cut, flapping, 50%-degraded,
/// 1%-loss}` × `schemes` at 60% load on the symmetric testbed topology,
/// reporting average FCT, degradation vs. the scheme's clean run, recovery
/// time and the fabric's fault damage. Probing is tightened to 5 ms rounds
/// so detection happens on the timescale of the faults.
///
/// A quarantined `(scheme, case)` cell renders as a row of `NaN`s plus a
/// footer line; when the *clean* baseline of a scheme is quarantined, the
/// degradation column of its other cases is `NaN` as well (there is
/// nothing sound to normalize against).
pub fn resilience(schemes: &[Scheme], cfg: &ExpConfig) -> ResilienceTable {
    let dist = web_search();
    let load = 0.6;
    // Flat (scheme, case, seed) cells, folded scheme-major (cases in
    // FaultCase::ALL order so `clean` arrives first) in cell order.
    let cells: Vec<(usize, usize, u64)> =
        (0..schemes.len()).flat_map(|si| (0..FaultCase::ALL.len()).flat_map(move |ci| (0..cfg.seeds).map(move |s| (si, ci, 4000 + s as u64)))).collect();
    let (outcomes, _) = run_cells(
        "resilience",
        &cells,
        cfg,
        // All cells share one load; scheme weight dominates wall time.
        |&(si, _, _)| schemes[si].cost_weight(),
        |&(si, ci, seed)| format!("resilience|{}|{}|seed{seed}|{}", schemes[si].label(), FaultCase::ALL[ci].label(), cfg.key_fragment()),
        |&(si, ci, seed), control| {
            let mut s = scenario(schemes[si].clone(), TopologyKind::Symmetric, load, seed, cfg, Some(control));
            s.profile.probe_interval = Duration::from_millis(5);
            s.faults = FaultCase::ALL[ci].plan(RESILIENCE_FAULT_AT, s.profile.probe_interval);
            let out = run_rpc_checked(&s, &dist);
            ResilienceRun { fct: out.fct, evictions: out.path_evictions, fault_stats: out.fault_stats, recovery: out.recovery }
        },
    );
    let mut table =
        ResilienceTable::new(format!("Resilience — S2-L2 faults at {} ms, symmetric, {:.0}% load", RESILIENCE_FAULT_AT.0 / 1_000_000, load * 100.0));
    let cases: Vec<&'static str> = FaultCase::ALL.iter().map(|c| c.label()).collect();
    fold_damage_rows(&mut table, "resilience", schemes, &cases, &outcomes, cfg.seeds as usize, 4000);
    table
}

/// Fold the `(scheme, case, seed)` outcomes of a damage sweep into table
/// rows, scheme-major with the clean baseline first in each scheme's case
/// list. Shared by [`resilience`] and [`recovery`]; the fold consumes
/// outcomes in cell order, so the resulting table is byte-identical at any
/// `--jobs` width.
fn fold_damage_rows(
    table: &mut ResilienceTable,
    scope: &str,
    schemes: &[Scheme],
    cases: &[&'static str],
    outcomes: &[CellOutcome<ResilienceRun>],
    per_point: usize,
    seed_base: u64,
) {
    let mut chunks = outcomes.chunks(per_point);
    for scheme in schemes {
        let mut clean_avg = None;
        for &case in cases {
            let chunk = chunks.next().expect("cell count matches schemes × cases");
            let mut pooled: Option<FctSummary> = None;
            let mut evictions = 0u64;
            let mut stats = FaultStats::default();
            let mut recovered_ms = Vec::new();
            let mut bad = Vec::new();
            for (off, outcome) in chunk.iter().enumerate() {
                match outcome {
                    CellOutcome::Ok(run) => {
                        evictions += run.evictions;
                        stats.absorb(&run.fault_stats);
                        if let Some(r) = run.recovery {
                            recovered_ms.push(r.as_secs_f64() * 1e3);
                        }
                        match pooled.as_mut() {
                            None => pooled = Some(run.fct.clone()),
                            Some(p) => p.merge(&run.fct),
                        }
                    }
                    other => {
                        let cell = format!("{} / {}", scheme.label(), case);
                        let seed = seed_base + off as u64;
                        let snap = quarantine_snapshot(scope, &cell, seed, &other.describe(), None);
                        bad.push(format!("{cell} seed {seed}: {}{snap}", other.describe()));
                    }
                }
            }
            let avg = if bad.is_empty() { pooled.expect("at least one seed").avg() } else { f64::NAN };
            if !bad.is_empty() {
                table.quarantined.extend(bad);
                evictions = 0;
                stats = FaultStats::default();
                recovered_ms.clear();
            }
            let clean = *clean_avg.get_or_insert(avg);
            let degradation = if avg.is_nan() || clean.is_nan() {
                f64::NAN
            } else if clean > 0.0 {
                avg / clean
            } else {
                1.0
            };
            table.rows.push(ResilienceRow {
                case: case.into(),
                scheme: scheme.label().to_string(),
                avg_fct_s: avg,
                degradation,
                recovery_ms: if recovered_ms.is_empty() { None } else { Some(recovered_ms.iter().sum::<f64>() / recovered_ms.len() as f64) },
                path_evictions: evictions,
                stats,
            });
        }
    }
}

/// One node-fault case of the recovery matrix. Every case crashes whole
/// nodes on the otherwise symmetric testbed topology and watches traffic
/// ride the outage out and re-converge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryCase {
    /// No fault — the per-scheme baseline the others are normalized to.
    Clean,
    /// ToR (leaf 1) crash-restart, cold: its CONGA/LetFlow/HULA soft state
    /// is gone when it boots back.
    TorReboot,
    /// Spine 1 crash-restart, cold — half the fabric's middle stage.
    SpineReboot,
    /// Hypervisor 0 crash-restart, warm: the vswitch state survives (VM
    /// live-migration-style restart), only the outage itself hurts.
    HostCrashWarm,
    /// Hypervisor 0 crash-restart, cold: flowlet table, WRR weights and
    /// discovery selections are flushed; re-discovery starts from scratch
    /// under the degradation ladder.
    HostCrashCold,
    /// Rolling ToR maintenance: leaf 0 reboots, then leaf 1 after the
    /// first is back — the planned-upgrade pattern.
    RollingTor,
}

impl RecoveryCase {
    /// Every case, clean first (the matrix relies on that ordering to have
    /// the baseline before computing degradations).
    pub const ALL: [RecoveryCase; 6] = [
        RecoveryCase::Clean,
        RecoveryCase::TorReboot,
        RecoveryCase::SpineReboot,
        RecoveryCase::HostCrashWarm,
        RecoveryCase::HostCrashCold,
        RecoveryCase::RollingTor,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryCase::Clean => "clean",
            RecoveryCase::TorReboot => "tor-reboot",
            RecoveryCase::SpineReboot => "spine-reboot",
            RecoveryCase::HostCrashWarm => "host-crash-warm",
            RecoveryCase::HostCrashCold => "host-crash-cold",
            RecoveryCase::RollingTor => "rolling-tor",
        }
    }

    /// The node-fault timeline for this case, anchored at `at`. Switch
    /// reboots take 15 ms (three 5 ms probe rounds — long enough that the
    /// blind window matters), host reboots 10 ms; the rolling upgrade
    /// staggers the two ToRs so the fabric is never fully dark.
    pub fn plan(self, at: Time) -> FaultPlan {
        let switch_boot = Duration::from_millis(15);
        let host_boot = Duration::from_millis(10);
        match self {
            RecoveryCase::Clean => FaultPlan::none(),
            RecoveryCase::TorReboot => FaultPlan::node_crash(at, NodeSelector::Leaf(1), switch_boot, NodeState::Cold),
            RecoveryCase::SpineReboot => FaultPlan::node_crash(at, NodeSelector::Spine(1), switch_boot, NodeState::Cold),
            RecoveryCase::HostCrashWarm => FaultPlan::node_crash(at, NodeSelector::Host(0), host_boot, NodeState::Warm),
            RecoveryCase::HostCrashCold => FaultPlan::node_crash(at, NodeSelector::Host(0), host_boot, NodeState::Cold),
            RecoveryCase::RollingTor => {
                let mut plan = FaultPlan::node_crash(at, NodeSelector::Leaf(0), host_boot, NodeState::Cold);
                plan.extend(FaultPlan::node_crash(at + host_boot + Duration::from_millis(5), NodeSelector::Leaf(1), host_boot, NodeState::Cold));
                plan
            }
        }
    }
}

/// The recovery-conformance matrix: `{clean, tor-reboot, spine-reboot,
/// host-crash-warm, host-crash-cold, rolling-tor}` × `schemes` at 60% load
/// on the symmetric testbed topology, reporting time-to-recover and the
/// SLO damage ledger (FCT degradation vs. the scheme's clean run, drops,
/// down time, evictions). Node faults lower to their incident cable sets
/// plus the restart-semantics events (`clove_net::fault` module docs);
/// cold restarts additionally flush switch LB tables or the whole vswitch
/// (flowlets, WRR weights, discovery selections). Probing is tightened to
/// 5 ms rounds so re-discovery happens on the timescale of the reboots.
pub fn recovery(schemes: &[Scheme], cfg: &ExpConfig) -> ResilienceTable {
    let dist = web_search();
    let load = 0.6;
    // Flat (scheme, case, seed) cells, folded scheme-major (cases in
    // RecoveryCase::ALL order so `clean` arrives first) in cell order.
    let cells: Vec<(usize, usize, u64)> =
        (0..schemes.len()).flat_map(|si| (0..RecoveryCase::ALL.len()).flat_map(move |ci| (0..cfg.seeds).map(move |s| (si, ci, 6000 + s as u64)))).collect();
    let (outcomes, _) = run_cells(
        "recovery",
        &cells,
        cfg,
        // All cells share one load; scheme weight dominates wall time.
        |&(si, _, _)| schemes[si].cost_weight(),
        |&(si, ci, seed)| format!("recovery|{}|{}|seed{seed}|{}", schemes[si].label(), RecoveryCase::ALL[ci].label(), cfg.key_fragment()),
        |&(si, ci, seed), control| {
            let mut s = scenario(schemes[si].clone(), TopologyKind::Symmetric, load, seed, cfg, Some(control));
            s.profile.probe_interval = Duration::from_millis(5);
            s.faults = RecoveryCase::ALL[ci].plan(RESILIENCE_FAULT_AT);
            let out = run_rpc_checked(&s, &dist);
            ResilienceRun { fct: out.fct, evictions: out.path_evictions, fault_stats: out.fault_stats, recovery: out.recovery }
        },
    );
    let mut table =
        ResilienceTable::new(format!("Recovery — node crash-restarts at {} ms, symmetric, {:.0}% load", RESILIENCE_FAULT_AT.0 / 1_000_000, load * 100.0));
    let cases: Vec<&'static str> = RecoveryCase::ALL.iter().map(|c| c.label()).collect();
    fold_damage_rows(&mut table, "recovery", schemes, &cases, &outcomes, cfg.seeds as usize, 6000);
    table
}

/// The control-loop loss rates the feedback-degradation sweep covers,
/// clean first (the sweep relies on that ordering to have the baseline
/// before computing slowdowns).
pub const FEEDBACK_LOSS_RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.20, 0.50];

/// Per-run payload of one feedback-degradation cell, pre-fold.
struct FeedbackRun {
    fct: FctSummary,
    control: ControlFaultStats,
    recovery: Option<Duration>,
}

impl JournalValue for FeedbackRun {
    fn to_journal(&self) -> Json {
        Json::Obj(vec![
            ("fct".into(), self.fct.to_journal()),
            ("control".into(), control_stats_to_json(&self.control)),
            ("recovery".into(), journal::opt_duration_to_json(self.recovery)),
        ])
    }
    fn from_journal(v: &Json) -> Result<FeedbackRun, String> {
        Ok(FeedbackRun {
            fct: FctSummary::from_journal(journal::field(v, "fct")?)?,
            control: control_stats_from_json(journal::field(v, "control")?)?,
            recovery: journal::opt_duration_from_json(journal::field(v, "recovery")?)?,
        })
    }
}

/// The feedback-degradation sweep: `{0, 1, 5, 20, 50}%` control-loop loss
/// (probes, probe replies *and* congestion feedback all dropped at the
/// rate, via [`ControlFaultPlan::lossy_control`]) × `schemes` at 60% load
/// on the symmetric testbed topology. Reports average and p99 FCT slowdown
/// vs. the scheme's clean run plus time-to-recover — the degradation
/// ladder's report card: schemes that *depend* on feedback (Clove-ECN/INT)
/// should degrade toward Edge-Flowlet, not below it.
///
/// The data plane is untouched: only the control loop is damaged, so any
/// slowdown is pure feedback starvation. Probing is tightened to 5 ms
/// rounds, as in [`resilience`], so staleness horizons are crossed within
/// the run.
pub fn feedback_degradation(schemes: &[Scheme], cfg: &ExpConfig) -> FeedbackTable {
    let dist = web_search();
    let load = 0.6;
    // Flat (scheme, rate, seed) cells, folded scheme-major (rates in
    // FEEDBACK_LOSS_RATES order so the clean baseline arrives first) in
    // cell order.
    let cells: Vec<(usize, usize, u64)> =
        (0..schemes.len()).flat_map(|si| (0..FEEDBACK_LOSS_RATES.len()).flat_map(move |ri| (0..cfg.seeds).map(move |s| (si, ri, 5000 + s as u64)))).collect();
    let (outcomes, _) = run_cells(
        "feedback",
        &cells,
        cfg,
        // All cells share one load; scheme weight dominates wall time.
        |&(si, _, _)| schemes[si].cost_weight(),
        |&(si, ri, seed)| {
            format!("feedback|{}|rate{}|seed{seed}|{}", schemes[si].label(), (FEEDBACK_LOSS_RATES[ri] * 1000.0).round() as u64, cfg.key_fragment())
        },
        |&(si, ri, seed), control| {
            let mut s = scenario(schemes[si].clone(), TopologyKind::Symmetric, load, seed, cfg, Some(control));
            s.profile.probe_interval = Duration::from_millis(5);
            let rate = FEEDBACK_LOSS_RATES[ri];
            if rate > 0.0 {
                s.control_faults = ControlFaultPlan::lossy_control(RESILIENCE_FAULT_AT, rate);
            }
            let out = run_rpc_checked(&s, &dist);
            FeedbackRun { fct: out.fct, control: out.control_stats, recovery: out.recovery }
        },
    );
    let mut table = FeedbackTable::new(format!(
        "Feedback degradation — lossy control loop from {} ms, symmetric, {:.0}% load",
        RESILIENCE_FAULT_AT.0 / 1_000_000,
        load * 100.0
    ));
    let per_point = cfg.seeds as usize;
    let mut chunks = outcomes.chunks(per_point);
    for scheme in schemes {
        let mut clean: Option<(f64, f64)> = None;
        for rate in FEEDBACK_LOSS_RATES {
            let chunk = chunks.next().expect("cell count matches schemes × rates");
            let mut pooled: Option<FctSummary> = None;
            let mut control = ControlFaultStats::default();
            let mut recovered_ms = Vec::new();
            let mut bad = Vec::new();
            for (off, outcome) in chunk.iter().enumerate() {
                match outcome {
                    CellOutcome::Ok(run) => {
                        control.absorb(&run.control);
                        if let Some(r) = run.recovery {
                            recovered_ms.push(r.as_secs_f64() * 1e3);
                        }
                        match pooled.as_mut() {
                            None => pooled = Some(run.fct.clone()),
                            Some(p) => p.merge(&run.fct),
                        }
                    }
                    other => {
                        let cell = format!("{} @ {:.0}% control loss", scheme.label(), rate * 100.0);
                        let seed = 5000 + off as u64;
                        let snap = quarantine_snapshot("feedback", &cell, seed, &other.describe(), None);
                        bad.push(format!("{cell} seed {seed}: {}{snap}", other.describe()));
                    }
                }
            }
            let (avg, p99) = if bad.is_empty() {
                let mut fct = pooled.expect("at least one seed");
                (fct.avg(), fct.p99())
            } else {
                table.quarantined.extend(bad);
                control = ControlFaultStats::default();
                recovered_ms.clear();
                (f64::NAN, f64::NAN)
            };
            let (clean_avg, clean_p99) = *clean.get_or_insert((avg, p99));
            let slowdown = |v: f64, base: f64| {
                if v.is_nan() || base.is_nan() {
                    f64::NAN
                } else if base > 0.0 {
                    v / base
                } else {
                    1.0
                }
            };
            table.rows.push(FeedbackRow {
                rate_pct: rate * 100.0,
                scheme: scheme.label().to_string(),
                avg_fct_s: avg,
                avg_slowdown: slowdown(avg, clean_avg),
                p99_fct_s: p99,
                p99_slowdown: slowdown(p99, clean_p99),
                recovery_ms: if recovered_ms.is_empty() { None } else { Some(recovered_ms.iter().sum::<f64>() / recovered_ms.len() as f64) },
                control,
            });
        }
    }
    table
}

/// Shared driver for FCT-vs-load figures: prefetch the whole scheme × load
/// matrix as one parallel fan-out, then assemble from cache hits.
/// Quarantined points render as `NaN` with a footer line per failed seed.
fn rpc_figure(
    title: &str,
    topology: TopologyKind,
    schemes: &[Scheme],
    loads: &[f64],
    cfg: &ExpConfig,
    cache: &mut PointCache,
    metric: impl Fn(&mut FctSummary) -> f64,
) -> FigureTable {
    cache.prefetch(schemes, topology, loads, cfg);
    let mut table = FigureTable::new(title, "load %", loads.iter().map(|l| l * 100.0).collect());
    for scheme in schemes {
        let mut ys = Vec::new();
        for &load in loads {
            match cache.point(scheme, topology, load, cfg) {
                Some(mut s) => ys.push(metric(&mut s)),
                None => {
                    ys.push(f64::NAN);
                    table.quarantined.extend(cache.quarantine_lines(scheme, topology, load).iter().cloned());
                }
            }
        }
        table.push_series(scheme.label(), ys);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_slug_collapses_unsafe_characters() {
        assert_eq!(path_slug("Clove-ECN @ 70% load (asym)"), "Clove-ECN-70-load-asym");
        assert_eq!(path_slug("MPTCP/4 / single-cut"), "MPTCP-4-single-cut");
        assert_eq!(path_slug("---"), "");
    }

    #[test]
    fn recovery_cases_validate_and_lower_on_the_testbed() {
        for case in RecoveryCase::ALL {
            let mut s = Scenario::new(Scheme::CloveEcn, TopologyKind::Symmetric, 0.5, 1);
            s.faults = case.plan(RESILIENCE_FAULT_AT);
            s.validate().unwrap_or_else(|e| panic!("{} must resolve on the paper testbed: {e}", case.label()));
            let nodes = s.faults.node_specs.len();
            match case {
                RecoveryCase::Clean => assert_eq!(nodes, 0),
                RecoveryCase::RollingTor => assert_eq!(nodes, 2, "rolling upgrade reboots both ToRs"),
                _ => assert_eq!(nodes, 1),
            }
        }
        // The warm and cold host crashes differ only in restart state.
        let warm = RecoveryCase::HostCrashWarm.plan(RESILIENCE_FAULT_AT);
        let cold = RecoveryCase::HostCrashCold.plan(RESILIENCE_FAULT_AT);
        assert!(!warm.node_specs[0].is_cold() && cold.node_specs[0].is_cold());
        assert_eq!(warm.node_specs[0].window(), cold.node_specs[0].window());
    }

    #[test]
    fn quarantine_spec_round_trips_through_clove_run_parsing() {
        // The snapshot's repro command feeds the snapshot file straight to
        // clove-run, so the embedded spec (plus the extra `quarantine`
        // object, which the parser must ignore) has to parse back into a
        // single-seed ScenarioSpec for the failed cell.
        let cfg = ExpConfig::quick();
        for scheme in [Scheme::CloveEcn, Scheme::Mptcp { subflows: 4 }, Scheme::Presto { oracle_weights: presto_oracle_weights(TopologyKind::Asymmetric) }] {
            let spec = rpc_cell_spec(&scheme, TopologyKind::Asymmetric, 0.7, 1001, &cfg).expect("figure schemes are spec-expressible");
            let Json::Obj(mut fields) = spec else { panic!("spec must be an object") };
            fields.push(("quarantine".to_string(), Json::Obj(vec![("reason".to_string(), Json::Str("panicked".to_string()))])));
            let parsed = crate::config::ScenarioSpec::from_json_str(&Json::Obj(fields).render()).expect("snapshot parses as a clove-run spec");
            assert_eq!(parsed.load, 0.7);
            assert_eq!(parsed.seed, 1001);
            assert_eq!(parsed.seeds, 1, "replay exactly the failed seed");
            assert_eq!(parsed.jobs_per_conn, cfg.jobs_per_conn);
        }
        assert!(rpc_cell_spec(&Scheme::EcmpDctcp, TopologyKind::Symmetric, 0.5, 1000, &cfg).is_none(), "ablation schemes fall back to a figures repro");
    }
}
