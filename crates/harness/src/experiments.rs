//! One function per paper figure, plus the parallel experiment engine.
//!
//! Every function returns a [`FigureTable`] whose series reproduce the
//! corresponding plot. The `scale` knob trades fidelity for wall-clock
//! time: it multiplies the job count per connection (the paper runs 50 K
//! jobs per connection on the testbed and 20 K in NS2; full-fidelity runs
//! of this reproduction use hundreds to thousands — enough for the
//! qualitative ordering, as EXPERIMENTS.md documents). Benches use tiny
//! scales.
//!
//! ## Parallelism and determinism
//!
//! Each `(scheme, load/fanout/case, seed)` cell is an independent
//! simulation: the determinism contract in `clove-sim` is *per run*, so
//! cells can execute on any worker in any order. All figure drivers funnel
//! through [`run_matrix`], which hands back results **in cell order**
//! regardless of completion order, and every fold below consumes them in
//! that order (seed merges, goodput sums, fault-stat absorbs). Output is
//! therefore byte-identical at any [`ExpConfig::jobs`] setting — the
//! regression test `determinism_parallel.rs` pins this.

use crate::report::{FeedbackRow, FeedbackTable, FigureTable, ResilienceRow, ResilienceTable};
use crate::scenario::{RpcOutcome, Scenario, TopologyKind};
use crate::scheme::Scheme;
use clove_net::fault::{CableSelector, ControlFaultPlan, ControlFaultStats, FaultPlan, FaultStats};
use clove_sim::{Duration, Time};
use clove_workload::{web_search, FctSummary, FlowSizeDist};
use rayon::prelude::*;

/// Shared experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Jobs per client connection.
    pub jobs_per_conn: u32,
    /// Connections per client.
    pub conns_per_client: u32,
    /// Seeds to average over (paper: 3).
    pub seeds: u32,
    /// Simulated-time ceiling per run.
    pub horizon_secs: u64,
    /// Worker threads for the experiment matrix (1 = serial). Output is
    /// identical at any setting; see the module docs.
    pub jobs: usize,
    /// Run every cell under the [`crate::invariants::InvariantMonitor`]
    /// and panic on any violation (`figures --strict`, integration tests).
    pub strict: bool,
}

impl ExpConfig {
    /// A configuration suitable for generating the committed figures.
    pub fn full() -> ExpConfig {
        ExpConfig { jobs_per_conn: 80, conns_per_client: 2, seeds: 2, horizon_secs: 60, jobs: 1, strict: false }
    }

    /// A tiny configuration for benches and CI smoke tests.
    pub fn quick() -> ExpConfig {
        ExpConfig { jobs_per_conn: 8, conns_per_client: 1, seeds: 1, horizon_secs: 10, jobs: 1, strict: false }
    }

    /// The same configuration with a different worker count.
    pub fn with_jobs(mut self, jobs: usize) -> ExpConfig {
        self.jobs = jobs.max(1);
        self
    }

    /// The same configuration with strict invariant checking toggled.
    pub fn with_strict(mut self, strict: bool) -> ExpConfig {
        self.strict = strict;
        self
    }
}

/// Run every cell of an experiment matrix, on `jobs` worker threads, and
/// return the results **in cell order** (never completion order).
///
/// This is the one fan-out primitive every figure/ablation/resilience
/// driver goes through. Each cell must be an independent simulation run —
/// the per-run determinism contract makes that safe — and because results
/// come back in input order, any fold written against the serial runner
/// produces identical bytes against the parallel one.
pub fn run_matrix<K, R, F>(cells: &[K], jobs: usize, run: F) -> Vec<R>
where
    K: Sync,
    R: Send,
    F: Fn(&K) -> R + Send + Sync,
{
    if jobs <= 1 || cells.len() <= 1 {
        return cells.iter().map(run).collect();
    }
    let pool = rayon::ThreadPoolBuilder::new().num_threads(jobs).build().expect("build worker pool");
    pool.install(|| cells.par_iter().map(run).collect())
}

/// The oracle Presto weights for the asymmetric topology (paper §5.2:
/// 0.33/0.33/0.17/0.17 — full weight on the two healthy S1 paths, half on
/// the S2 paths that share the surviving S2–L2 cable).
pub fn presto_oracle_weights(topology: TopologyKind) -> Option<Vec<f64>> {
    match topology {
        TopologyKind::Asymmetric => Some(vec![0.33, 0.33, 0.17, 0.17]),
        _ => None,
    }
}

fn scenario(scheme: Scheme, topology: TopologyKind, load: f64, seed: u64, cfg: &ExpConfig) -> Scenario {
    let mut s = Scenario::new(scheme, topology, load, seed);
    s.jobs_per_conn = cfg.jobs_per_conn;
    s.conns_per_client = cfg.conns_per_client;
    s.horizon = Time::from_secs(cfg.horizon_secs);
    s.strict = cfg.strict;
    s
}

/// Run one scenario, failing loudly on strict-mode invariant violations
/// (the outcome carries them only when the scenario ran strict). Every
/// figure/ablation driver funnels its RPC runs through here so `--strict`
/// covers the whole experiment surface.
fn run_rpc_checked(s: &Scenario, dist: &FlowSizeDist) -> RpcOutcome {
    let out = s.run_rpc(dist);
    assert!(out.violations.is_empty(), "invariant violations in {} (seed {}): {:#?}", s.scheme.label(), s.seed, out.violations);
    out
}

/// Run one (scheme, topology, load) point over the configured seeds and
/// pool the FCT samples.
pub fn rpc_point(scheme: &Scheme, topology: TopologyKind, load: f64, cfg: &ExpConfig) -> FctSummary {
    rpc_point_detailed(scheme, topology, load, cfg).0
}

/// [`rpc_point`] also reporting the total simulation events processed
/// across the seeds (the denominator for events/sec benchmarks).
///
/// Seeds run as parallel cells at `cfg.jobs > 1`; the FCT merge happens
/// in seed order either way.
pub fn rpc_point_detailed(scheme: &Scheme, topology: TopologyKind, load: f64, cfg: &ExpConfig) -> (FctSummary, u64) {
    let dist = web_search();
    let seeds: Vec<u64> = (0..cfg.seeds).map(|s| 1000 + s as u64).collect();
    let outs = run_matrix(&seeds, cfg.jobs, |&seed| {
        let s = scenario(scheme.clone(), topology, load, seed, cfg);
        let out = run_rpc_checked(&s, &dist);
        (out.fct, out.events)
    });
    let mut pooled: Option<FctSummary> = None;
    let mut events = 0u64;
    for (fct, ev) in outs {
        events += ev;
        match pooled.as_mut() {
            None => pooled = Some(fct),
            Some(p) => p.merge(&fct),
        }
    }
    (pooled.expect("at least one seed"), events)
}

/// Memoizes [`rpc_point`] results so figures sharing the same underlying
/// runs (4c with 5a/5b/5c, 8b with 9) pay for them once.
#[derive(Default)]
pub struct PointCache {
    entries: std::collections::HashMap<(String, bool, u64), FctSummary>,
    /// Total simulation events processed by runs charged to this cache
    /// (cache hits add nothing — the run already happened).
    pub events: u64,
}

impl PointCache {
    /// An empty cache.
    pub fn new() -> PointCache {
        PointCache::default()
    }

    fn key(scheme: &Scheme, topology: TopologyKind, load: f64) -> (String, bool, u64) {
        (scheme.label().to_string(), topology == TopologyKind::Asymmetric, (load * 1000.0).round() as u64)
    }

    /// Fetch or compute a point.
    pub fn point(&mut self, scheme: &Scheme, topology: TopologyKind, load: f64, cfg: &ExpConfig) -> FctSummary {
        let key = Self::key(scheme, topology, load);
        if let Some(hit) = self.entries.get(&key) {
            return hit.clone();
        }
        let (fct, events) = rpc_point_detailed(scheme, topology, load, cfg);
        self.events += events;
        self.entries.entry(key).or_insert(fct).clone()
    }

    /// Compute every missing `(scheme, load)` point of a figure in one flat
    /// `(scheme, load, seed)` fan-out, so parallelism spans the whole
    /// matrix rather than just the seeds of one point.
    ///
    /// Results are folded grouped in cell order (scheme-major, then load,
    /// then seed) — exactly the order the serial [`point`] path merges in,
    /// so a prefetched cache is indistinguishable from a serially filled
    /// one.
    ///
    /// [`point`]: PointCache::point
    pub fn prefetch(&mut self, schemes: &[Scheme], topology: TopologyKind, loads: &[f64], cfg: &ExpConfig) {
        let mut missing: Vec<(usize, f64)> = Vec::new();
        for (si, scheme) in schemes.iter().enumerate() {
            for &load in loads {
                let key = Self::key(scheme, topology, load);
                if !self.entries.contains_key(&key) && !missing.iter().any(|&(mi, ml)| Self::key(&schemes[mi], topology, ml) == key) {
                    missing.push((si, load));
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        let dist = web_search();
        let cells: Vec<(usize, f64, u64)> = missing.iter().flat_map(|&(si, load)| (0..cfg.seeds).map(move |s| (si, load, 1000 + s as u64))).collect();
        let results = run_matrix(&cells, cfg.jobs, |&(si, load, seed)| {
            let s = scenario(schemes[si].clone(), topology, load, seed, cfg);
            let out = run_rpc_checked(&s, &dist);
            (out.fct, out.events)
        });
        let per_point = cfg.seeds as usize;
        for (pi, &(si, load)) in missing.iter().enumerate() {
            let mut pooled: Option<FctSummary> = None;
            for (fct, events) in &results[pi * per_point..(pi + 1) * per_point] {
                self.events += events;
                match pooled.as_mut() {
                    None => pooled = Some(fct.clone()),
                    Some(p) => p.merge(fct),
                }
            }
            self.entries.insert(Self::key(&schemes[si], topology, load), pooled.expect("at least one seed"));
        }
    }
}

/// The paper's testbed scheme set (Figures 4–6).
pub fn testbed_schemes(topology: TopologyKind) -> Vec<Scheme> {
    vec![Scheme::Ecmp, Scheme::EdgeFlowlet, Scheme::CloveEcn, Scheme::Mptcp { subflows: 4 }, Scheme::Presto { oracle_weights: presto_oracle_weights(topology) }]
}

/// The paper's simulation scheme set (Figures 8–9).
pub fn sim_schemes() -> Vec<Scheme> {
    vec![Scheme::Ecmp, Scheme::EdgeFlowlet, Scheme::CloveEcn, Scheme::CloveInt, Scheme::Conga]
}

/// Figure 4b: symmetric topology, average FCT vs load.
pub fn fig4b(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig4b_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig4b`] reusing a shared run cache.
pub fn fig4b_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 4b — testbed symmetric, avg FCT (s)", TopologyKind::Symmetric, &testbed_schemes(TopologyKind::Symmetric), loads, cfg, cache, |s| s.avg())
}

/// Figure 4c: asymmetric topology, average FCT vs load.
pub fn fig4c(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig4c_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig4c`] reusing a shared run cache.
pub fn fig4c_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 4c — testbed asymmetric, avg FCT (s)", TopologyKind::Asymmetric, &testbed_schemes(TopologyKind::Asymmetric), loads, cfg, cache, |s| {
        s.avg()
    })
}

/// Figure 5a: asymmetric, average FCT of mice (<100 KB) vs load.
pub fn fig5a(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig5a_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig5a`] reusing a shared run cache.
pub fn fig5a_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure(
        "Fig 5a — asymmetric, mice (<100KB) avg FCT (s)",
        TopologyKind::Asymmetric,
        &testbed_schemes(TopologyKind::Asymmetric),
        loads,
        cfg,
        cache,
        |s| s.mice.mean(),
    )
}

/// Figure 5b: asymmetric, average FCT of elephants (>10 MB) vs load.
pub fn fig5b(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig5b_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig5b`] reusing a shared run cache.
pub fn fig5b_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure(
        "Fig 5b — asymmetric, elephants (>10MB) avg FCT (s)",
        TopologyKind::Asymmetric,
        &testbed_schemes(TopologyKind::Asymmetric),
        loads,
        cfg,
        cache,
        |s| s.elephants.mean(),
    )
}

/// Figure 5c: asymmetric, 99th-percentile FCT vs load.
pub fn fig5c(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig5c_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig5c`] reusing a shared run cache.
pub fn fig5c_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 5c — asymmetric, p99 FCT (s)", TopologyKind::Asymmetric, &testbed_schemes(TopologyKind::Asymmetric), loads, cfg, cache, |s| s.p99())
}

/// Figure 6: Clove-ECN parameter sensitivity on the asymmetric topology.
/// Series: (flowlet-gap multiplier × RTT, ECN threshold in packets).
pub fn fig6(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    let variants: [(&str, f64, u32); 4] =
        [("Clove-best (1*RTT, 20pkts)", 1.0, 20), ("Clove (0.2*RTT, 20pkts)", 0.2, 20), ("Clove (5*RTT, 20pkts)", 5.0, 20), ("Clove (1*RTT, 40pkts)", 1.0, 40)];
    let dist = web_search();
    // Flat (variant, load, seed) cells, folded variant-major in cell order.
    let cells: Vec<(usize, f64, u64)> =
        (0..variants.len()).flat_map(|vi| loads.iter().flat_map(move |&load| (0..cfg.seeds).map(move |s| (vi, load, 2000 + s as u64)))).collect();
    let results = run_matrix(&cells, cfg.jobs, |&(vi, load, seed)| {
        let (_, gap_mult, ecn_pkts) = variants[vi];
        let mut s = scenario(Scheme::CloveEcn, TopologyKind::Asymmetric, load, seed, cfg);
        // Multipliers are relative to the default gap (≈ the loaded RTT,
        // the paper's "1×RTT best" operating point).
        s.profile.flowlet_gap = Duration::from_secs_f64(s.profile.flowlet_gap.as_secs_f64() * gap_mult);
        s.profile.ecn_threshold_pkts = ecn_pkts;
        run_rpc_checked(&s, &dist).fct
    });
    let mut table = FigureTable::new("Fig 6 — Clove-ECN parameter sensitivity, asymmetric, avg FCT (s)", "load %", loads.iter().map(|l| l * 100.0).collect());
    let per_point = cfg.seeds as usize;
    let mut chunks = results.chunks(per_point);
    for (name, _, _) in variants {
        let mut ys = Vec::new();
        for _ in loads {
            let chunk = chunks.next().expect("cell count matches variants × loads");
            let mut pooled: Option<FctSummary> = None;
            for fct in chunk {
                match pooled.as_mut() {
                    None => pooled = Some(fct.clone()),
                    Some(p) => p.merge(fct),
                }
            }
            ys.push(pooled.expect("seed ran").avg());
        }
        table.push_series(name, ys);
    }
    table
}

/// Figure 7: incast — client goodput (Gbps) vs request fan-in.
pub fn fig7(fanouts: &[u32], requests: u32, cfg: &ExpConfig) -> FigureTable {
    let schemes = [Scheme::CloveEcn, Scheme::EdgeFlowlet, Scheme::Mptcp { subflows: 4 }];
    // Flat (scheme, fanout, seed) cells, folded scheme-major in cell order.
    let cells: Vec<(usize, u32, u64)> =
        (0..schemes.len()).flat_map(|si| fanouts.iter().flat_map(move |&fanout| (0..cfg.seeds).map(move |s| (si, fanout, 3000 + s as u64)))).collect();
    let results = run_matrix(&cells, cfg.jobs, |&(si, fanout, seed)| {
        let s = scenario(schemes[si].clone(), TopologyKind::Symmetric, 0.5, seed, cfg);
        let out = s.run_incast(fanout, requests, 10_000_000);
        assert!(out.invariant_violations == 0, "{} invariant violations in incast {} (seed {})", out.invariant_violations, schemes[si].label(), seed);
        out.goodput_bps / 1e9
    });
    let mut table = FigureTable::new("Fig 7 — incast: client goodput (Gbps) vs request fan-in", "fan-in", fanouts.iter().map(|&f| f as f64).collect());
    let per_point = cfg.seeds as usize;
    let mut chunks = results.chunks(per_point);
    for scheme in &schemes {
        let mut ys = Vec::new();
        for _ in fanouts {
            let chunk = chunks.next().expect("cell count matches schemes × fanouts");
            ys.push(chunk.iter().sum::<f64>() / cfg.seeds as f64);
        }
        table.push_series(scheme.label(), ys);
    }
    table
}

/// Figure 8a: simulation scheme set, symmetric topology, avg FCT vs load.
pub fn fig8a(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig8a_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig8a`] reusing a shared run cache.
pub fn fig8a_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 8a — sim symmetric, avg FCT (s)", TopologyKind::Symmetric, &sim_schemes(), loads, cfg, cache, |s| s.avg())
}

/// Figure 8b: simulation scheme set, asymmetric topology, avg FCT vs load.
pub fn fig8b(loads: &[f64], cfg: &ExpConfig) -> FigureTable {
    fig8b_cached(loads, cfg, &mut PointCache::new())
}

/// [`fig8b`] reusing a shared run cache.
pub fn fig8b_cached(loads: &[f64], cfg: &ExpConfig, cache: &mut PointCache) -> FigureTable {
    rpc_figure("Fig 8b — sim asymmetric, avg FCT (s)", TopologyKind::Asymmetric, &sim_schemes(), loads, cfg, cache, |s| s.avg())
}

/// Figure 9: CDFs of mice FCTs at 70% load on the asymmetric topology for
/// ECMP, Clove-ECN, CONGA. Returns `(scheme, cdf points)` triples.
pub fn fig9(cfg: &ExpConfig) -> Vec<(String, Vec<(f64, f64)>)> {
    fig9_cached(cfg, &mut PointCache::new())
}

/// [`fig9`] reusing a shared run cache.
pub fn fig9_cached(cfg: &ExpConfig, cache: &mut PointCache) -> Vec<(String, Vec<(f64, f64)>)> {
    let schemes = [Scheme::Ecmp, Scheme::CloveEcn, Scheme::Conga];
    cache.prefetch(&schemes, TopologyKind::Asymmetric, &[0.7], cfg);
    schemes
        .into_iter()
        .map(|scheme| {
            let label = scheme.label().to_string();
            let mut s = cache.point(&scheme, TopologyKind::Asymmetric, 0.7, cfg);
            (label, s.mice_cdf(40))
        })
        .collect()
}

/// One fault case of the resilience sweep. Every case hits the paper's
/// S2–L2 cable ([`CableSelector::S2_L2`]) mid-run on the otherwise
/// symmetric testbed topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCase {
    /// No fault — the per-scheme baseline the others are normalized to.
    Clean,
    /// One announced cut, never restored (the paper's asymmetry, but
    /// arriving mid-run).
    SingleCut,
    /// A silent flap: repeated down/up cycles the control plane never
    /// sees — the gray failure edge probing exists for.
    Flapping,
    /// Line rate silently halved.
    Degraded,
    /// 1% silent stochastic packet loss.
    RandomLoss,
}

impl FaultCase {
    /// Every case, clean first (the sweep relies on that ordering to have
    /// the baseline before computing degradations).
    pub const ALL: [FaultCase; 5] = [FaultCase::Clean, FaultCase::SingleCut, FaultCase::Flapping, FaultCase::Degraded, FaultCase::RandomLoss];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            FaultCase::Clean => "clean",
            FaultCase::SingleCut => "single-cut",
            FaultCase::Flapping => "flapping",
            FaultCase::Degraded => "50%-degraded",
            FaultCase::RandomLoss => "1%-loss",
        }
    }

    /// The fault timeline for this case, anchored at `at`. Flap cycles are
    /// sized in probe intervals so the detection race (blackhole_rounds
    /// consecutive truncated rounds vs. the down span) scales with the
    /// profile: down for 4 intervals, up for 2, twice.
    pub fn plan(self, at: Time, probe_interval: Duration) -> FaultPlan {
        let cable = CableSelector::S2_L2;
        match self {
            FaultCase::Clean => FaultPlan::none(),
            FaultCase::SingleCut => FaultPlan::cut(at, cable),
            FaultCase::Flapping => FaultPlan::flap(at, cable, probe_interval * 6, 2.0 / 3.0, 2),
            FaultCase::Degraded => FaultPlan::degrade(at, cable, 0.5),
            FaultCase::RandomLoss => FaultPlan::loss(at, cable, 0.01),
        }
    }
}

/// The schemes the resilience sweep covers: the union of the testbed and
/// simulation sets (every scheme the figures exercise, each once).
pub fn resilience_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Ecmp,
        Scheme::EdgeFlowlet,
        Scheme::CloveEcn,
        Scheme::Mptcp { subflows: 4 },
        Scheme::Presto { oracle_weights: None },
        Scheme::CloveInt,
        Scheme::Conga,
    ]
}

/// When the resilience faults land: late enough for a pre-fault FCT
/// baseline, early enough that plenty of traffic runs under the fault.
pub const RESILIENCE_FAULT_AT: Time = Time(20_000_000); // 20 ms

/// Per-run payload of one resilience cell, pre-fold.
struct ResilienceRun {
    fct: FctSummary,
    evictions: u64,
    fault_stats: FaultStats,
    recovery: Option<Duration>,
}

/// The resilience sweep: `{clean, single-cut, flapping, 50%-degraded,
/// 1%-loss}` × `schemes` at 60% load on the symmetric testbed topology,
/// reporting average FCT, degradation vs. the scheme's clean run, recovery
/// time and the fabric's fault damage. Probing is tightened to 5 ms rounds
/// so detection happens on the timescale of the faults.
pub fn resilience(schemes: &[Scheme], cfg: &ExpConfig) -> ResilienceTable {
    let dist = web_search();
    let load = 0.6;
    // Flat (scheme, case, seed) cells, folded scheme-major (cases in
    // FaultCase::ALL order so `clean` arrives first) in cell order.
    let cells: Vec<(usize, usize, u64)> =
        (0..schemes.len()).flat_map(|si| (0..FaultCase::ALL.len()).flat_map(move |ci| (0..cfg.seeds).map(move |s| (si, ci, 4000 + s as u64)))).collect();
    let results = run_matrix(&cells, cfg.jobs, |&(si, ci, seed)| {
        let mut s = scenario(schemes[si].clone(), TopologyKind::Symmetric, load, seed, cfg);
        s.profile.probe_interval = Duration::from_millis(5);
        s.faults = FaultCase::ALL[ci].plan(RESILIENCE_FAULT_AT, s.profile.probe_interval);
        let out = run_rpc_checked(&s, &dist);
        ResilienceRun { fct: out.fct, evictions: out.path_evictions, fault_stats: out.fault_stats, recovery: out.recovery }
    });
    let mut table =
        ResilienceTable::new(format!("Resilience — S2-L2 faults at {} ms, symmetric, {:.0}% load", RESILIENCE_FAULT_AT.0 / 1_000_000, load * 100.0));
    let per_point = cfg.seeds as usize;
    let mut chunks = results.chunks(per_point);
    for scheme in schemes {
        let mut clean_avg = None;
        for case in FaultCase::ALL {
            let chunk = chunks.next().expect("cell count matches schemes × cases");
            let mut pooled: Option<FctSummary> = None;
            let mut evictions = 0u64;
            let mut stats = FaultStats::default();
            let mut recovered_ms = Vec::new();
            for run in chunk {
                evictions += run.evictions;
                stats.absorb(&run.fault_stats);
                if let Some(r) = run.recovery {
                    recovered_ms.push(r.as_secs_f64() * 1e3);
                }
                match pooled.as_mut() {
                    None => pooled = Some(run.fct.clone()),
                    Some(p) => p.merge(&run.fct),
                }
            }
            let fct = pooled.expect("at least one seed");
            let avg = fct.avg();
            let clean = *clean_avg.get_or_insert(avg);
            table.rows.push(ResilienceRow {
                case: case.label().into(),
                scheme: scheme.label().to_string(),
                avg_fct_s: avg,
                degradation: if clean > 0.0 { avg / clean } else { 1.0 },
                recovery_ms: if recovered_ms.is_empty() { None } else { Some(recovered_ms.iter().sum::<f64>() / recovered_ms.len() as f64) },
                path_evictions: evictions,
                stats,
            });
        }
    }
    table
}

/// The control-loop loss rates the feedback-degradation sweep covers,
/// clean first (the sweep relies on that ordering to have the baseline
/// before computing slowdowns).
pub const FEEDBACK_LOSS_RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.20, 0.50];

/// Per-run payload of one feedback-degradation cell, pre-fold.
struct FeedbackRun {
    fct: FctSummary,
    control: ControlFaultStats,
    recovery: Option<Duration>,
}

/// The feedback-degradation sweep: `{0, 1, 5, 20, 50}%` control-loop loss
/// (probes, probe replies *and* congestion feedback all dropped at the
/// rate, via [`ControlFaultPlan::lossy_control`]) × `schemes` at 60% load
/// on the symmetric testbed topology. Reports average and p99 FCT slowdown
/// vs. the scheme's clean run plus time-to-recover — the degradation
/// ladder's report card: schemes that *depend* on feedback (Clove-ECN/INT)
/// should degrade toward Edge-Flowlet, not below it.
///
/// The data plane is untouched: only the control loop is damaged, so any
/// slowdown is pure feedback starvation. Probing is tightened to 5 ms
/// rounds, as in [`resilience`], so staleness horizons are crossed within
/// the run.
pub fn feedback_degradation(schemes: &[Scheme], cfg: &ExpConfig) -> FeedbackTable {
    let dist = web_search();
    let load = 0.6;
    // Flat (scheme, rate, seed) cells, folded scheme-major (rates in
    // FEEDBACK_LOSS_RATES order so the clean baseline arrives first) in
    // cell order.
    let cells: Vec<(usize, usize, u64)> =
        (0..schemes.len()).flat_map(|si| (0..FEEDBACK_LOSS_RATES.len()).flat_map(move |ri| (0..cfg.seeds).map(move |s| (si, ri, 5000 + s as u64)))).collect();
    let results = run_matrix(&cells, cfg.jobs, |&(si, ri, seed)| {
        let mut s = scenario(schemes[si].clone(), TopologyKind::Symmetric, load, seed, cfg);
        s.profile.probe_interval = Duration::from_millis(5);
        let rate = FEEDBACK_LOSS_RATES[ri];
        if rate > 0.0 {
            s.control_faults = ControlFaultPlan::lossy_control(RESILIENCE_FAULT_AT, rate);
        }
        let out = run_rpc_checked(&s, &dist);
        FeedbackRun { fct: out.fct, control: out.control_stats, recovery: out.recovery }
    });
    let mut table = FeedbackTable::new(format!(
        "Feedback degradation — lossy control loop from {} ms, symmetric, {:.0}% load",
        RESILIENCE_FAULT_AT.0 / 1_000_000,
        load * 100.0
    ));
    let per_point = cfg.seeds as usize;
    let mut chunks = results.chunks(per_point);
    for scheme in schemes {
        let mut clean: Option<(f64, f64)> = None;
        for rate in FEEDBACK_LOSS_RATES {
            let chunk = chunks.next().expect("cell count matches schemes × rates");
            let mut pooled: Option<FctSummary> = None;
            let mut control = ControlFaultStats::default();
            let mut recovered_ms = Vec::new();
            for run in chunk {
                control.absorb(&run.control);
                if let Some(r) = run.recovery {
                    recovered_ms.push(r.as_secs_f64() * 1e3);
                }
                match pooled.as_mut() {
                    None => pooled = Some(run.fct.clone()),
                    Some(p) => p.merge(&run.fct),
                }
            }
            let mut fct = pooled.expect("at least one seed");
            let (avg, p99) = (fct.avg(), fct.p99());
            let (clean_avg, clean_p99) = *clean.get_or_insert((avg, p99));
            table.rows.push(FeedbackRow {
                rate_pct: rate * 100.0,
                scheme: scheme.label().to_string(),
                avg_fct_s: avg,
                avg_slowdown: if clean_avg > 0.0 { avg / clean_avg } else { 1.0 },
                p99_fct_s: p99,
                p99_slowdown: if clean_p99 > 0.0 { p99 / clean_p99 } else { 1.0 },
                recovery_ms: if recovered_ms.is_empty() { None } else { Some(recovered_ms.iter().sum::<f64>() / recovered_ms.len() as f64) },
                control,
            });
        }
    }
    table
}

/// Shared driver for FCT-vs-load figures: prefetch the whole scheme × load
/// matrix as one parallel fan-out, then assemble from cache hits.
fn rpc_figure(
    title: &str,
    topology: TopologyKind,
    schemes: &[Scheme],
    loads: &[f64],
    cfg: &ExpConfig,
    cache: &mut PointCache,
    metric: impl Fn(&mut FctSummary) -> f64,
) -> FigureTable {
    cache.prefetch(schemes, topology, loads, cfg);
    let mut table = FigureTable::new(title, "load %", loads.iter().map(|l| l * 100.0).collect());
    for scheme in schemes {
        let ys: Vec<f64> = loads
            .iter()
            .map(|&load| {
                let mut s = cache.point(scheme, topology, load, cfg);
                metric(&mut s)
            })
            .collect();
        table.push_series(scheme.label(), ys);
    }
    table
}
