//! Serializable experiment specifications — run scenarios from JSON.
//!
//! [`ScenarioSpec`] is the on-disk form of a [`Scenario`]: a JSON file a
//! user can write without touching Rust, consumed by the `clove-run`
//! binary. [`RunReport`] is its JSON output (summary numbers only; full
//! CDFs via the `cdf_points` knob).

use crate::profile::Profile;
use crate::scenario::{Scenario, TopologyKind};
use crate::scheme::Scheme;
use clove_sim::{Duration, Time};
use clove_workload::{data_mining, enterprise, web_search, FlowSizeDist};
use serde::{Deserialize, Serialize};

/// JSON-facing scheme name.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "kebab-case", tag = "name")]
pub enum SchemeSpec {
    /// Static flow hashing.
    Ecmp,
    /// Random port per flowlet.
    EdgeFlowlet,
    /// Clove with ECN feedback.
    CloveEcn,
    /// Clove with INT feedback.
    CloveInt,
    /// Clove with latency feedback.
    CloveLatency {
        /// Enable the adaptive flowlet gap.
        #[serde(default)]
        adaptive_gap: bool,
    },
    /// Presto with optional static path weights.
    Presto {
        /// Oracle weights per discovered path.
        #[serde(default)]
        weights: Option<Vec<f64>>,
    },
    /// MPTCP with k subflows.
    Mptcp {
        /// Subflow count (paper: 4).
        subflows: usize,
    },
    /// CONGA in the switches.
    Conga,
    /// LetFlow in the switches.
    LetFlow,
    /// HULA in the switches.
    Hula,
    /// Partial Clove deployment.
    Incremental {
        /// Number of Clove-enabled hypervisors.
        clove_hosts: u32,
    },
}

impl From<SchemeSpec> for Scheme {
    fn from(s: SchemeSpec) -> Scheme {
        match s {
            SchemeSpec::Ecmp => Scheme::Ecmp,
            SchemeSpec::EdgeFlowlet => Scheme::EdgeFlowlet,
            SchemeSpec::CloveEcn => Scheme::CloveEcn,
            SchemeSpec::CloveInt => Scheme::CloveInt,
            SchemeSpec::CloveLatency { adaptive_gap } => Scheme::CloveLatency { adaptive_gap },
            SchemeSpec::Presto { weights } => Scheme::Presto { oracle_weights: weights },
            SchemeSpec::Mptcp { subflows } => Scheme::Mptcp { subflows },
            SchemeSpec::Conga => Scheme::Conga,
            SchemeSpec::LetFlow => Scheme::LetFlow,
            SchemeSpec::Hula => Scheme::Hula,
            SchemeSpec::Incremental { clove_hosts } => Scheme::Incremental { clove_hosts },
        }
    }
}

/// JSON-facing topology.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
#[serde(rename_all = "kebab-case", tag = "kind")]
pub enum TopologySpec {
    /// Healthy 2×2×16 leaf-spine.
    Symmetric,
    /// Leaf-spine with the S2–L2 cable down from t = 0.
    Asymmetric,
    /// k-ary fat-tree.
    FatTree {
        /// Pod arity (even, ≥ 4).
        k: u32,
    },
}

impl From<TopologySpec> for TopologyKind {
    fn from(t: TopologySpec) -> TopologyKind {
        match t {
            TopologySpec::Symmetric => TopologyKind::Symmetric,
            TopologySpec::Asymmetric => TopologyKind::Asymmetric,
            TopologySpec::FatTree { k } => TopologyKind::FatTree { k },
        }
    }
}

/// A complete experiment specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Load balancer under test.
    pub scheme: SchemeSpec,
    /// Topology variant.
    pub topology: TopologySpec,
    /// Offered load as a fraction of bisection bandwidth.
    pub load: f64,
    /// Flow-size distribution: "web-search", "enterprise", "data-mining".
    #[serde(default = "default_workload")]
    pub workload: String,
    /// Jobs per client connection.
    #[serde(default = "default_jobs")]
    pub jobs_per_conn: u32,
    /// Persistent connections per client.
    #[serde(default = "default_conns")]
    pub conns_per_client: u32,
    /// RNG seed.
    #[serde(default)]
    pub seed: u64,
    /// Simulated-time ceiling in seconds.
    #[serde(default = "default_horizon")]
    pub horizon_secs: u64,
    /// Optional mid-run S2–L2 failure time in milliseconds.
    #[serde(default)]
    pub fail_at_ms: Option<u64>,
    /// Flowlet gap override in microseconds.
    #[serde(default)]
    pub flowlet_gap_us: Option<u64>,
    /// ECN threshold override in MTU packets.
    #[serde(default)]
    pub ecn_threshold_pkts: Option<u32>,
}

fn default_workload() -> String {
    "web-search".into()
}
fn default_jobs() -> u32 {
    60
}
fn default_conns() -> u32 {
    2
}
fn default_horizon() -> u64 {
    30
}

impl ScenarioSpec {
    /// Resolve the named workload distribution.
    pub fn distribution(&self) -> Result<FlowSizeDist, String> {
        match self.workload.as_str() {
            "web-search" => Ok(web_search()),
            "enterprise" => Ok(enterprise()),
            "data-mining" => Ok(data_mining()),
            other => Err(format!("unknown workload '{other}' (want web-search | enterprise | data-mining)")),
        }
    }

    /// Build the runnable [`Scenario`].
    pub fn to_scenario(&self) -> Scenario {
        let mut s = Scenario::new(self.scheme.clone().into(), self.topology.into(), self.load, self.seed);
        s.jobs_per_conn = self.jobs_per_conn;
        s.conns_per_client = self.conns_per_client;
        s.horizon = Time::from_secs(self.horizon_secs);
        s.fail_at = self.fail_at_ms.map(Time::from_millis);
        let mut profile = Profile::default();
        if let Some(us) = self.flowlet_gap_us {
            profile.flowlet_gap = Duration::from_micros(us);
        }
        if let Some(pkts) = self.ecn_threshold_pkts {
            profile.ecn_threshold_pkts = pkts;
        }
        s.profile = profile;
        s
    }

    /// Run the RPC workload described by this spec.
    pub fn run(&self) -> Result<RunReport, String> {
        let dist = self.distribution()?;
        let scenario = self.to_scenario();
        let out = scenario.run_rpc(&dist);
        let mut fct = out.fct;
        Ok(RunReport {
            scheme: format!("{:?}", self.scheme),
            load: self.load,
            flows_completed: fct.all.count() as u64,
            flows_incomplete: fct.incomplete as u64,
            avg_fct_s: fct.avg(),
            p50_fct_s: fct.all.p50(),
            p99_fct_s: fct.p99(),
            mice_avg_fct_s: fct.mice.mean(),
            elephant_avg_fct_s: fct.elephants.mean(),
            sim_time_s: out.sim_time.as_secs_f64(),
            events: out.events,
            drops: out.drops,
            ecn_marks: out.ecn_marks,
            timeouts: out.timeouts,
            retransmits: out.retransmits,
        })
    }
}

/// JSON result summary of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheme descriptor.
    pub scheme: String,
    /// Offered load fraction.
    pub load: f64,
    /// Flows completed before the horizon.
    pub flows_completed: u64,
    /// Flows still in flight at the horizon.
    pub flows_incomplete: u64,
    /// Average flow completion time, seconds.
    pub avg_fct_s: f64,
    /// Median FCT.
    pub p50_fct_s: f64,
    /// 99th-percentile FCT.
    pub p99_fct_s: f64,
    /// Average FCT of flows under 100 KB.
    pub mice_avg_fct_s: f64,
    /// Average FCT of flows over 10 MB.
    pub elephant_avg_fct_s: f64,
    /// Simulated seconds elapsed.
    pub sim_time_s: f64,
    /// Simulation events processed.
    pub events: u64,
    /// Packets dropped.
    pub drops: u64,
    /// CE marks applied.
    pub ecn_marks: u64,
    /// TCP timeouts.
    pub timeouts: u64,
    /// TCP retransmissions.
    pub retransmits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec {
            scheme: SchemeSpec::CloveEcn,
            topology: TopologySpec::Asymmetric,
            load: 0.7,
            workload: "web-search".into(),
            jobs_per_conn: 10,
            conns_per_client: 1,
            seed: 42,
            horizon_secs: 10,
            fail_at_ms: Some(100),
            flowlet_gap_us: Some(150),
            ecn_threshold_pkts: Some(30),
        };
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.load, 0.7);
        assert_eq!(back.scheme, SchemeSpec::CloveEcn);
        assert_eq!(back.fail_at_ms, Some(100));
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let json = r#"{"scheme":{"name":"ecmp"},"topology":{"kind":"symmetric"},"load":0.5}"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.jobs_per_conn, 60);
        assert_eq!(spec.workload, "web-search");
        assert!(spec.fail_at_ms.is_none());
        let s = spec.to_scenario();
        assert_eq!(s.load, 0.5);
    }

    #[test]
    fn scheme_specs_map_to_schemes() {
        assert_eq!(Scheme::from(SchemeSpec::Mptcp { subflows: 4 }).label(), "MPTCP");
        assert_eq!(Scheme::from(SchemeSpec::Hula).label(), "HULA");
        assert_eq!(Scheme::from(SchemeSpec::Presto { weights: None }).label(), "Presto");
        assert_eq!(
            Scheme::from(SchemeSpec::Incremental { clove_hosts: 8 }).label(),
            "Clove-ECN (partial)"
        );
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let json = r#"{"scheme":{"name":"ecmp"},"topology":{"kind":"symmetric"},"load":0.5,"workload":"nope"}"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert!(spec.distribution().is_err());
    }

    #[test]
    fn tiny_spec_runs_end_to_end() {
        let json = r#"{"scheme":{"name":"clove-ecn"},"topology":{"kind":"asymmetric"},
                       "load":0.3,"jobs_per_conn":2,"conns_per_client":1,"horizon_secs":10}"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        let report = spec.run().unwrap();
        assert!(report.flows_completed > 0);
        let out_json = serde_json::to_string(&report).unwrap();
        assert!(out_json.contains("avg_fct_s"));
    }
}
