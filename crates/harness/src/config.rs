//! Serializable experiment specifications — run scenarios from JSON.
//!
//! [`ScenarioSpec`] is the on-disk form of a [`Scenario`]: a JSON file a
//! user can write without touching Rust, consumed by the `clove-run`
//! binary. [`RunReport`] is its JSON output (summary numbers only; full
//! CDFs via the `cdf_points` knob). Parsing and rendering go through the
//! in-tree [`crate::json`] module so the workspace builds fully offline.

use crate::journal::{Journal, JournalValue};
use crate::json::Json;
use crate::orchestrator::{self, CellOutcome, ExecPolicy};
use crate::profile::Profile;
use crate::scenario::{Scenario, TopologyKind};
use crate::scheme::Scheme;
use clove_sim::{Duration, QueueBackend, Time};
use clove_workload::{data_mining, enterprise, web_search, FlowSizeDist};
use std::sync::Arc;

/// JSON-facing scheme name (`{"name": "clove-ecn", ...}`).
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeSpec {
    /// Static flow hashing.
    Ecmp,
    /// Random port per flowlet.
    EdgeFlowlet,
    /// Clove with ECN feedback.
    CloveEcn,
    /// Clove with INT feedback.
    CloveInt,
    /// Clove with latency feedback.
    CloveLatency {
        /// Enable the adaptive flowlet gap.
        adaptive_gap: bool,
    },
    /// Presto with optional static path weights.
    Presto {
        /// Oracle weights per discovered path.
        weights: Option<Vec<f64>>,
    },
    /// MPTCP with k subflows.
    Mptcp {
        /// Subflow count (paper: 4).
        subflows: usize,
    },
    /// CONGA in the switches.
    Conga,
    /// LetFlow in the switches.
    LetFlow,
    /// HULA in the switches.
    Hula,
    /// Partial Clove deployment.
    Incremental {
        /// Number of Clove-enabled hypervisors.
        clove_hosts: u32,
    },
}

impl SchemeSpec {
    /// Parse from the tagged-object form, e.g. `{"name":"mptcp","subflows":4}`.
    pub fn from_json(v: &Json) -> Result<SchemeSpec, String> {
        let name = v.get("name").and_then(Json::as_str).ok_or_else(|| "scheme: missing string field 'name'".to_string())?;
        match name {
            "ecmp" => Ok(SchemeSpec::Ecmp),
            "edge-flowlet" => Ok(SchemeSpec::EdgeFlowlet),
            "clove-ecn" => Ok(SchemeSpec::CloveEcn),
            "clove-int" => Ok(SchemeSpec::CloveInt),
            "clove-latency" => Ok(SchemeSpec::CloveLatency { adaptive_gap: v.get("adaptive_gap").and_then(Json::as_bool).unwrap_or(false) }),
            "presto" => {
                let weights = match v.get("weights") {
                    None | Some(Json::Null) => None,
                    Some(w) => Some(
                        w.as_array()
                            .ok_or_else(|| "presto: 'weights' must be an array".to_string())?
                            .iter()
                            .map(|x| x.as_f64().ok_or_else(|| "presto: weights must be numbers".to_string()))
                            .collect::<Result<Vec<f64>, String>>()?,
                    ),
                };
                Ok(SchemeSpec::Presto { weights })
            }
            "mptcp" => Ok(SchemeSpec::Mptcp {
                subflows: v.get("subflows").and_then(Json::as_u64).ok_or_else(|| "mptcp: missing integer field 'subflows'".to_string())? as usize,
            }),
            "conga" => Ok(SchemeSpec::Conga),
            "let-flow" => Ok(SchemeSpec::LetFlow),
            "hula" => Ok(SchemeSpec::Hula),
            "incremental" => Ok(SchemeSpec::Incremental {
                clove_hosts: v.get("clove_hosts").and_then(Json::as_u64).ok_or_else(|| "incremental: missing integer field 'clove_hosts'".to_string())? as u32,
            }),
            other => Err(format!("unknown scheme name '{other}'")),
        }
    }

    /// Render back to the tagged-object form.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        let name = match self {
            SchemeSpec::Ecmp => "ecmp",
            SchemeSpec::EdgeFlowlet => "edge-flowlet",
            SchemeSpec::CloveEcn => "clove-ecn",
            SchemeSpec::CloveInt => "clove-int",
            SchemeSpec::CloveLatency { .. } => "clove-latency",
            SchemeSpec::Presto { .. } => "presto",
            SchemeSpec::Mptcp { .. } => "mptcp",
            SchemeSpec::Conga => "conga",
            SchemeSpec::LetFlow => "let-flow",
            SchemeSpec::Hula => "hula",
            SchemeSpec::Incremental { .. } => "incremental",
        };
        fields.push(("name".to_string(), Json::Str(name.to_string())));
        match self {
            SchemeSpec::CloveLatency { adaptive_gap } => {
                fields.push(("adaptive_gap".to_string(), Json::Bool(*adaptive_gap)));
            }
            SchemeSpec::Presto { weights } => {
                let w = match weights {
                    Some(ws) => Json::Arr(ws.iter().map(|&x| Json::Num(x)).collect()),
                    None => Json::Null,
                };
                fields.push(("weights".to_string(), w));
            }
            SchemeSpec::Mptcp { subflows } => {
                fields.push(("subflows".to_string(), Json::Num(*subflows as f64)));
            }
            SchemeSpec::Incremental { clove_hosts } => {
                fields.push(("clove_hosts".to_string(), Json::Num(*clove_hosts as f64)));
            }
            _ => {}
        }
        Json::Obj(fields)
    }
}

impl From<SchemeSpec> for Scheme {
    fn from(s: SchemeSpec) -> Scheme {
        match s {
            SchemeSpec::Ecmp => Scheme::Ecmp,
            SchemeSpec::EdgeFlowlet => Scheme::EdgeFlowlet,
            SchemeSpec::CloveEcn => Scheme::CloveEcn,
            SchemeSpec::CloveInt => Scheme::CloveInt,
            SchemeSpec::CloveLatency { adaptive_gap } => Scheme::CloveLatency { adaptive_gap },
            SchemeSpec::Presto { weights } => Scheme::Presto { oracle_weights: weights },
            SchemeSpec::Mptcp { subflows } => Scheme::Mptcp { subflows },
            SchemeSpec::Conga => Scheme::Conga,
            SchemeSpec::LetFlow => Scheme::LetFlow,
            SchemeSpec::Hula => Scheme::Hula,
            SchemeSpec::Incremental { clove_hosts } => Scheme::Incremental { clove_hosts },
        }
    }
}

/// JSON-facing topology (`{"kind": "asymmetric"}`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// Healthy 2×2×16 leaf-spine.
    Symmetric,
    /// Leaf-spine with the S2–L2 cable down from t = 0.
    Asymmetric,
    /// k-ary fat-tree.
    FatTree {
        /// Pod arity (even, ≥ 4).
        k: u32,
    },
}

impl TopologySpec {
    /// Parse from the tagged-object form, e.g. `{"kind":"fat-tree","k":4}`.
    pub fn from_json(v: &Json) -> Result<TopologySpec, String> {
        let kind = v.get("kind").and_then(Json::as_str).ok_or_else(|| "topology: missing string field 'kind'".to_string())?;
        match kind {
            "symmetric" => Ok(TopologySpec::Symmetric),
            "asymmetric" => Ok(TopologySpec::Asymmetric),
            "fat-tree" => {
                Ok(TopologySpec::FatTree { k: v.get("k").and_then(Json::as_u64).ok_or_else(|| "fat-tree: missing integer field 'k'".to_string())? as u32 })
            }
            other => Err(format!("unknown topology kind '{other}'")),
        }
    }

    /// Render back to the tagged-object form.
    pub fn to_json(&self) -> Json {
        match self {
            TopologySpec::Symmetric => Json::Obj(vec![("kind".to_string(), Json::Str("symmetric".to_string()))]),
            TopologySpec::Asymmetric => Json::Obj(vec![("kind".to_string(), Json::Str("asymmetric".to_string()))]),
            TopologySpec::FatTree { k } => Json::Obj(vec![("kind".to_string(), Json::Str("fat-tree".to_string())), ("k".to_string(), Json::Num(*k as f64))]),
        }
    }
}

impl From<TopologySpec> for TopologyKind {
    fn from(t: TopologySpec) -> TopologyKind {
        match t {
            TopologySpec::Symmetric => TopologyKind::Symmetric,
            TopologySpec::Asymmetric => TopologyKind::Asymmetric,
            TopologySpec::FatTree { k } => TopologyKind::FatTree { k },
        }
    }
}

/// JSON-facing node crash-restart
/// (`{"node":"leaf1","at_ms":20,"down_ms":15,"state":"cold"}`): the named
/// node goes dark at `at_ms` — every incident cable drops — and reboots
/// `down_ms` later, cold (soft state flushed: switch LB tables, or the
/// whole vswitch plus discovery for a host) or warm (state survives).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCrashSpec {
    /// Which node reboots.
    pub node: clove_net::fault::NodeSelector,
    /// Crash time in milliseconds.
    pub at_ms: u64,
    /// Reboot duration in milliseconds (must be positive).
    pub down_ms: u64,
    /// Cold (default) or warm restart.
    pub cold: bool,
}

impl NodeCrashSpec {
    /// Parse from the object form. The node is named `leaf<N>`, `spine<N>`
    /// or `host<N>`; `state` is `"cold"` (default) or `"warm"`.
    pub fn from_json(v: &Json) -> Result<NodeCrashSpec, String> {
        let name = v.get("node").and_then(Json::as_str).ok_or_else(|| "node_crash: missing string field 'node'".to_string())?;
        let node = parse_node(name)?;
        let num = |key: &str| v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("node_crash: missing integer field '{key}'"));
        let down_ms = num("down_ms")?;
        if down_ms == 0 {
            return Err("node_crash: 'down_ms' must be positive".to_string());
        }
        let cold = match v.get("state") {
            None | Some(Json::Null) => true,
            Some(s) => match s.as_str() {
                Some("cold") => true,
                Some("warm") => false,
                _ => return Err("node_crash: 'state' must be \"cold\" or \"warm\"".to_string()),
            },
        };
        Ok(NodeCrashSpec { node, at_ms: num("at_ms")?, down_ms, cold })
    }

    /// Render back to the object form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("node".to_string(), Json::Str(format!("{}{}", self.node.tier(), self.node.index()))),
            ("at_ms".to_string(), Json::Num(self.at_ms as f64)),
            ("down_ms".to_string(), Json::Num(self.down_ms as f64)),
            ("state".to_string(), Json::Str(if self.cold { "cold" } else { "warm" }.to_string())),
        ])
    }

    /// The one-spec fault plan this crash describes.
    pub fn plan(&self) -> clove_net::fault::FaultPlan {
        use clove_net::fault::{FaultPlan, NodeState};
        FaultPlan::node_crash(
            Time::from_millis(self.at_ms),
            self.node,
            Duration::from_millis(self.down_ms),
            if self.cold { NodeState::Cold } else { NodeState::Warm },
        )
    }
}

/// Parse a node name like `leaf0`, `spine1` or `host12`.
fn parse_node(name: &str) -> Result<clove_net::fault::NodeSelector, String> {
    use clove_net::fault::NodeSelector;
    let digits = name.find(|c: char| c.is_ascii_digit()).ok_or_else(|| format!("node '{name}': want leaf<N> | spine<N> | host<N>"))?;
    let (tier, idx) = name.split_at(digits);
    let index: u32 = idx.parse().map_err(|_| format!("node '{name}': bad index '{idx}'"))?;
    match tier {
        "leaf" => Ok(NodeSelector::Leaf(index)),
        "spine" => Ok(NodeSelector::Spine(index)),
        "host" => Ok(NodeSelector::Host(index)),
        other => Err(format!("node '{name}': unknown tier '{other}' (want leaf | spine | host)")),
    }
}

/// A complete experiment specification.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Load balancer under test.
    pub scheme: SchemeSpec,
    /// Topology variant.
    pub topology: TopologySpec,
    /// Offered load as a fraction of bisection bandwidth.
    pub load: f64,
    /// Flow-size distribution: "web-search", "enterprise", "data-mining".
    pub workload: String,
    /// Jobs per client connection.
    pub jobs_per_conn: u32,
    /// Persistent connections per client.
    pub conns_per_client: u32,
    /// RNG seed (base seed when `seeds > 1`).
    pub seed: u64,
    /// Consecutive seeds to run and pool, starting at `seed` (default 1).
    /// Seeds are independent runs, so they fan out across `--jobs` workers.
    pub seeds: u32,
    /// Simulated-time ceiling in seconds.
    pub horizon_secs: u64,
    /// Optional mid-run S2–L2 failure time in milliseconds.
    pub fail_at_ms: Option<u64>,
    /// Optional node crash-restart (composes with `fail_at_ms`; the
    /// cable/node precedence rules in `clove_net::fault` apply when both
    /// touch the same cable).
    pub node_crash: Option<NodeCrashSpec>,
    /// Flowlet gap override in microseconds.
    pub flowlet_gap_us: Option<u64>,
    /// ECN threshold override in MTU packets.
    pub ecn_threshold_pkts: Option<u32>,
    /// Optional control-loop loss rate in [0, 1): probes, probe replies
    /// and congestion feedback are all dropped at this rate (the
    /// feedback-degradation knob).
    pub control_loss: Option<f64>,
    /// When the control-loop loss starts, in milliseconds (default 0).
    pub control_loss_at_ms: Option<u64>,
    /// Run under the invariant monitor and fail the run on any violation
    /// (`clove-run --strict` forces this on).
    pub strict: bool,
    /// Event-queue backend (`clove-run --queue heap` selects the legacy
    /// binary-heap oracle). Deliberately *not* part of the spec JSON or
    /// journal keys: the report is byte-identical under either backend.
    pub queue: QueueBackend,
    /// Capture structured decision traces (`clove-run --trace FILE`). Like
    /// `queue`, CLI-only and *not* part of the spec JSON or journal keys:
    /// tracing must never change the report, and trace runs bypass the
    /// checkpoint journal (a resumed seed has no buffer to replay).
    pub trace: bool,
}

impl ScenarioSpec {
    /// Parse a spec from JSON text, applying defaults for omitted fields.
    pub fn from_json_str(text: &str) -> Result<ScenarioSpec, String> {
        let v = Json::parse(text)?;
        if !matches!(v, Json::Obj(_)) {
            return Err("spec must be a JSON object".to_string());
        }
        let scheme = SchemeSpec::from_json(v.get("scheme").ok_or_else(|| "missing field 'scheme'".to_string())?)?;
        let topology = TopologySpec::from_json(v.get("topology").ok_or_else(|| "missing field 'topology'".to_string())?)?;
        let load = v.get("load").and_then(Json::as_f64).ok_or_else(|| "missing numeric field 'load'".to_string())?;
        let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(x) => x.as_u64().map(Some).ok_or_else(|| format!("'{key}' must be a non-negative integer")),
            }
        };
        Ok(ScenarioSpec {
            scheme,
            topology,
            load,
            workload: match v.get("workload") {
                None => "web-search".to_string(),
                Some(w) => w.as_str().ok_or_else(|| "'workload' must be a string".to_string())?.to_string(),
            },
            jobs_per_conn: opt_u64("jobs_per_conn")?.unwrap_or(60) as u32,
            conns_per_client: opt_u64("conns_per_client")?.unwrap_or(2) as u32,
            seed: opt_u64("seed")?.unwrap_or(0),
            seeds: opt_u64("seeds")?.unwrap_or(1).max(1) as u32,
            horizon_secs: opt_u64("horizon_secs")?.unwrap_or(30),
            fail_at_ms: opt_u64("fail_at_ms")?,
            node_crash: match v.get("node_crash") {
                None | Some(Json::Null) => None,
                Some(x) => Some(NodeCrashSpec::from_json(x)?),
            },
            flowlet_gap_us: opt_u64("flowlet_gap_us")?,
            ecn_threshold_pkts: opt_u64("ecn_threshold_pkts")?.map(|x| x as u32),
            control_loss: match v.get("control_loss") {
                None | Some(Json::Null) => None,
                Some(x) => {
                    let rate = x.as_f64().ok_or_else(|| "'control_loss' must be a number".to_string())?;
                    if !(0.0..1.0).contains(&rate) {
                        return Err("'control_loss' must be in [0, 1)".to_string());
                    }
                    Some(rate)
                }
            },
            control_loss_at_ms: opt_u64("control_loss_at_ms")?,
            strict: match v.get("strict") {
                None | Some(Json::Null) => false,
                Some(x) => x.as_bool().ok_or_else(|| "'strict' must be a boolean".to_string())?,
            },
            queue: QueueBackend::default(),
            trace: false,
        })
    }

    /// Render back to JSON (all fields explicit).
    pub fn to_json(&self) -> Json {
        let opt = |o: Option<u64>| o.map(|x| Json::Num(x as f64)).unwrap_or(Json::Null);
        Json::Obj(vec![
            ("scheme".to_string(), self.scheme.to_json()),
            ("topology".to_string(), self.topology.to_json()),
            ("load".to_string(), Json::Num(self.load)),
            ("workload".to_string(), Json::Str(self.workload.clone())),
            ("jobs_per_conn".to_string(), Json::Num(self.jobs_per_conn as f64)),
            ("conns_per_client".to_string(), Json::Num(self.conns_per_client as f64)),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("seeds".to_string(), Json::Num(self.seeds as f64)),
            ("horizon_secs".to_string(), Json::Num(self.horizon_secs as f64)),
            ("fail_at_ms".to_string(), opt(self.fail_at_ms)),
            ("node_crash".to_string(), self.node_crash.as_ref().map(NodeCrashSpec::to_json).unwrap_or(Json::Null)),
            ("flowlet_gap_us".to_string(), opt(self.flowlet_gap_us)),
            ("ecn_threshold_pkts".to_string(), opt(self.ecn_threshold_pkts.map(u64::from))),
            ("control_loss".to_string(), self.control_loss.map(Json::Num).unwrap_or(Json::Null)),
            ("control_loss_at_ms".to_string(), opt(self.control_loss_at_ms)),
            ("strict".to_string(), Json::Bool(self.strict)),
        ])
    }

    /// Resolve the named workload distribution.
    pub fn distribution(&self) -> Result<FlowSizeDist, String> {
        match self.workload.as_str() {
            "web-search" => Ok(web_search()),
            "enterprise" => Ok(enterprise()),
            "data-mining" => Ok(data_mining()),
            other => Err(format!("unknown workload '{other}' (want web-search | enterprise | data-mining)")),
        }
    }

    /// Build the runnable [`Scenario`].
    pub fn to_scenario(&self) -> Scenario {
        self.to_scenario_seeded(self.seed)
    }

    fn to_scenario_seeded(&self, seed: u64) -> Scenario {
        let mut s = Scenario::new(self.scheme.clone().into(), self.topology.into(), self.load, seed);
        s.jobs_per_conn = self.jobs_per_conn;
        s.conns_per_client = self.conns_per_client;
        s.horizon = Time::from_secs(self.horizon_secs);
        if let Some(ms) = self.fail_at_ms {
            s.fail_at(Time::from_millis(ms));
        }
        if let Some(crash) = &self.node_crash {
            s.faults.extend(crash.plan());
        }
        if let Some(rate) = self.control_loss {
            s.control_faults = clove_net::fault::ControlFaultPlan::lossy_control(Time::from_millis(self.control_loss_at_ms.unwrap_or(0)), rate);
        }
        s.strict = self.strict;
        s.queue = self.queue;
        s.trace = self.trace;
        let mut profile = Profile::default();
        if let Some(us) = self.flowlet_gap_us {
            profile.flowlet_gap = Duration::from_micros(us);
        }
        if let Some(pkts) = self.ecn_threshold_pkts {
            profile.ecn_threshold_pkts = pkts;
        }
        s.profile = profile;
        s
    }

    /// Run the RPC workload described by this spec (serial).
    pub fn run(&self) -> Result<RunReport, String> {
        self.run_jobs(1)
    }

    /// Run the RPC workload, fanning the spec's seeds out over `jobs`
    /// worker threads. Samples are pooled in seed order, so the report is
    /// identical at any `jobs` value.
    pub fn run_jobs(&self, jobs: usize) -> Result<RunReport, String> {
        self.run_jobs_journaled(jobs, None)
    }

    /// Run with decision tracing on: returns the report plus the pooled
    /// JSONL trace (seed order — deterministic at any `jobs`) and the count
    /// of events dropped at buffer capacity. The report itself is
    /// byte-identical to an untraced run.
    pub fn run_jobs_traced(&self, jobs: usize) -> Result<(RunReport, String, u64), String> {
        let mut spec = self.clone();
        spec.trace = true;
        spec.run_jobs_inner(jobs, None)
    }

    /// [`ScenarioSpec::run_jobs`] with panic isolation and an optional
    /// checkpoint journal: completed seeds are recorded under the journal's
    /// `clove-run` scope (keyed by the full spec JSON plus the seed), so an
    /// interrupted invocation re-run with `--resume` serves finished seeds
    /// from disk and only executes the remainder. The report is byte-identical
    /// with or without a resume, at any `jobs` value.
    pub fn run_jobs_journaled(&self, jobs: usize, journal: Option<&Journal>) -> Result<RunReport, String> {
        self.run_jobs_inner(jobs, journal).map(|(report, _, _)| report)
    }

    fn run_jobs_inner(&self, jobs: usize, journal: Option<&Journal>) -> Result<(RunReport, String, u64), String> {
        let dist = self.distribution()?;
        self.to_scenario().profile.discovery_config().validate().map_err(|e| format!("invalid discovery configuration: {e}"))?;
        let seeds: Vec<u64> = (0..self.seeds.max(1) as u64).map(|i| self.seed + i).collect();
        let spec_key = self.to_json().render();
        let (outcomes, _stats) = orchestrator::run_journaled(
            &seeds,
            jobs,
            ExecPolicy::default(),
            None, // seeds of one spec are uniform-cost
            journal.map(|j| (j, "clove-run")),
            |&seed| format!("{spec_key}|seed{seed}"),
            |&seed, control| {
                let mut s = self.to_scenario_seeded(seed);
                s.control = Some(Arc::clone(control));
                SeedRun::from_outcome(s.run_rpc(&dist))
            },
        );
        let mut fct: Option<clove_workload::FctSummary> = None;
        let (mut sim_time, mut events, mut drops, mut ecn_marks, mut timeouts, mut retransmits) = (0.0f64, 0u64, 0u64, 0u64, 0u64, 0u64);
        let mut violations: Vec<String> = Vec::new();
        let mut quarantined: Vec<String> = Vec::new();
        let mut trace_jsonl = String::new();
        let mut trace_dropped = 0u64;
        for (seed, outcome) in seeds.iter().zip(outcomes) {
            let out = match outcome {
                CellOutcome::Ok(run) => run,
                bad => {
                    quarantined.push(format!("seed {seed}: {}", bad.describe()));
                    continue;
                }
            };
            match fct.as_mut() {
                None => fct = Some(out.fct),
                Some(f) => f.merge(&out.fct),
            }
            sim_time = sim_time.max(out.sim_time_s);
            events += out.events;
            drops += out.drops;
            ecn_marks += out.ecn_marks;
            timeouts += out.timeouts;
            retransmits += out.retransmits;
            violations.extend(out.violations);
            trace_jsonl.push_str(&out.trace_jsonl);
            trace_dropped += out.trace_dropped;
        }
        if !quarantined.is_empty() {
            return Err(format!("{} seed(s) quarantined: {}", quarantined.len(), quarantined.join("; ")));
        }
        if !violations.is_empty() {
            return Err(format!("strict mode: {} invariant violation(s): {}", violations.len(), violations.join("; ")));
        }
        let mut fct = fct.expect("at least one seed");
        let report = RunReport {
            scheme: format!("{:?}", self.scheme),
            load: self.load,
            seeds: self.seeds.max(1) as u64,
            flows_completed: fct.all.count() as u64,
            flows_incomplete: fct.incomplete as u64,
            avg_fct_s: fct.avg(),
            p50_fct_s: fct.all.p50(),
            p99_fct_s: fct.p99(),
            mice_avg_fct_s: fct.mice.mean(),
            elephant_avg_fct_s: fct.elephants.mean(),
            sim_time_s: sim_time,
            events,
            drops,
            ecn_marks,
            timeouts,
            retransmits,
            strict: self.strict,
        };
        Ok((report, trace_jsonl, trace_dropped))
    }
}

/// The per-seed slice of an [`RpcOutcome`](crate::scenario::RpcOutcome)
/// that [`ScenarioSpec::run_jobs_journaled`] folds into a [`RunReport`] —
/// exactly what gets checkpointed, so a resumed seed reproduces the fold
/// bit-for-bit.
#[derive(Debug, Clone)]
struct SeedRun {
    fct: clove_workload::FctSummary,
    sim_time_s: f64,
    events: u64,
    drops: u64,
    ecn_marks: u64,
    timeouts: u64,
    retransmits: u64,
    violations: Vec<String>,
    /// Rendered decision trace (empty unless the scenario traced). Not
    /// journaled: trace runs bypass the checkpoint journal entirely.
    trace_jsonl: String,
    /// Trace events dropped at buffer capacity.
    trace_dropped: u64,
}

impl SeedRun {
    fn from_outcome(out: crate::scenario::RpcOutcome) -> SeedRun {
        SeedRun {
            fct: out.fct,
            sim_time_s: out.sim_time.as_secs_f64(),
            events: out.events,
            drops: out.drops,
            ecn_marks: out.ecn_marks,
            timeouts: out.timeouts,
            retransmits: out.retransmits,
            violations: out.violations,
            trace_jsonl: clove_telemetry::render_jsonl(&out.trace),
            trace_dropped: out.trace_dropped,
        }
    }
}

impl JournalValue for SeedRun {
    fn to_journal(&self) -> Json {
        Json::Obj(vec![
            ("fct".into(), self.fct.to_journal()),
            ("sim_time_s".into(), Json::Num(self.sim_time_s)),
            ("events".into(), Json::Num(self.events as f64)),
            ("drops".into(), Json::Num(self.drops as f64)),
            ("ecn_marks".into(), Json::Num(self.ecn_marks as f64)),
            ("timeouts".into(), Json::Num(self.timeouts as f64)),
            ("retransmits".into(), Json::Num(self.retransmits as f64)),
            ("violations".into(), Json::Arr(self.violations.iter().map(|v| Json::Str(v.clone())).collect())),
        ])
    }

    fn from_journal(v: &Json) -> Result<SeedRun, String> {
        let violations = match v.get("violations") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|x| x.as_str().map(str::to_string).ok_or_else(|| "violation entries must be strings".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing 'violations' array".into()),
        };
        let scalar = |key: &str| v.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing numeric '{key}'"));
        Ok(SeedRun {
            fct: clove_workload::FctSummary::from_journal(v.get("fct").ok_or("missing 'fct'")?)?,
            sim_time_s: scalar("sim_time_s")?,
            events: scalar("events")? as u64,
            drops: scalar("drops")? as u64,
            ecn_marks: scalar("ecn_marks")? as u64,
            timeouts: scalar("timeouts")? as u64,
            retransmits: scalar("retransmits")? as u64,
            violations,
            trace_jsonl: String::new(),
            trace_dropped: 0,
        })
    }
}

/// JSON result summary of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheme descriptor.
    pub scheme: String,
    /// Offered load fraction.
    pub load: f64,
    /// Seeds pooled into this report.
    pub seeds: u64,
    /// Flows completed before the horizon.
    pub flows_completed: u64,
    /// Flows still in flight at the horizon.
    pub flows_incomplete: u64,
    /// Average flow completion time, seconds.
    pub avg_fct_s: f64,
    /// Median FCT.
    pub p50_fct_s: f64,
    /// 99th-percentile FCT.
    pub p99_fct_s: f64,
    /// Average FCT of flows under 100 KB.
    pub mice_avg_fct_s: f64,
    /// Average FCT of flows over 10 MB.
    pub elephant_avg_fct_s: f64,
    /// Simulated seconds elapsed.
    pub sim_time_s: f64,
    /// Simulation events processed.
    pub events: u64,
    /// Packets dropped.
    pub drops: u64,
    /// CE marks applied.
    pub ecn_marks: u64,
    /// TCP timeouts.
    pub timeouts: u64,
    /// TCP retransmissions.
    pub retransmits: u64,
    /// Whether the run executed under the invariant monitor. A strict
    /// report only renders when no invariant was violated (violations turn
    /// the run into an error instead).
    pub strict: bool,
}

impl RunReport {
    /// Render as a JSON object, keys in declaration order.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scheme".to_string(), Json::Str(self.scheme.clone())),
            ("load".to_string(), Json::Num(self.load)),
            ("seeds".to_string(), Json::Num(self.seeds as f64)),
            ("flows_completed".to_string(), Json::Num(self.flows_completed as f64)),
            ("flows_incomplete".to_string(), Json::Num(self.flows_incomplete as f64)),
            ("avg_fct_s".to_string(), Json::Num(self.avg_fct_s)),
            ("p50_fct_s".to_string(), Json::Num(self.p50_fct_s)),
            ("p99_fct_s".to_string(), Json::Num(self.p99_fct_s)),
            ("mice_avg_fct_s".to_string(), Json::Num(self.mice_avg_fct_s)),
            ("elephant_avg_fct_s".to_string(), Json::Num(self.elephant_avg_fct_s)),
            ("sim_time_s".to_string(), Json::Num(self.sim_time_s)),
            ("events".to_string(), Json::Num(self.events as f64)),
            ("drops".to_string(), Json::Num(self.drops as f64)),
            ("ecn_marks".to_string(), Json::Num(self.ecn_marks as f64)),
            ("timeouts".to_string(), Json::Num(self.timeouts as f64)),
            ("retransmits".to_string(), Json::Num(self.retransmits as f64)),
            ("strict".to_string(), Json::Bool(self.strict)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec {
            scheme: SchemeSpec::CloveEcn,
            topology: TopologySpec::Asymmetric,
            load: 0.7,
            workload: "web-search".into(),
            jobs_per_conn: 10,
            conns_per_client: 1,
            seed: 42,
            seeds: 1,
            horizon_secs: 10,
            fail_at_ms: Some(100),
            node_crash: Some(NodeCrashSpec { node: clove_net::fault::NodeSelector::Leaf(1), at_ms: 20, down_ms: 15, cold: true }),
            flowlet_gap_us: Some(150),
            ecn_threshold_pkts: Some(30),
            control_loss: Some(0.2),
            control_loss_at_ms: Some(20),
            strict: true,
            queue: QueueBackend::default(),
            trace: false,
        };
        let json = spec.to_json().render_pretty();
        let back = ScenarioSpec::from_json_str(&json).unwrap();
        assert_eq!(back.load, 0.7);
        assert_eq!(back.scheme, SchemeSpec::CloveEcn);
        assert_eq!(back.fail_at_ms, Some(100));
        assert_eq!(back.node_crash, spec.node_crash);
        assert_eq!(back.control_loss, Some(0.2));
        assert_eq!(back.control_loss_at_ms, Some(20));
        assert!(back.strict);
        let s = back.to_scenario();
        assert!(s.strict);
        assert_eq!(s.control_faults.expand().len(), 3, "lossy_control covers probes, replies and feedback");
    }

    #[test]
    fn node_crash_spec_parses_and_builds_the_plan() {
        let json = r#"{"scheme":{"name":"clove-ecn"},"topology":{"kind":"symmetric"},"load":0.5,
                       "node_crash":{"node":"host3","at_ms":20,"down_ms":10,"state":"warm"}}"#;
        let spec = ScenarioSpec::from_json_str(json).unwrap();
        let crash = spec.node_crash.expect("node crash parsed");
        assert_eq!(crash.node, clove_net::fault::NodeSelector::Host(3));
        assert!(!crash.cold);
        let s = spec.to_scenario();
        assert_eq!(s.faults.node_specs.len(), 1);
        assert_eq!(s.faults.node_specs[0].window(), (Time::from_millis(20), Time::from_millis(30)));
        assert!(!s.faults.node_specs[0].is_cold());
        // State defaults to cold.
        let json = r#"{"scheme":{"name":"ecmp"},"topology":{"kind":"symmetric"},"load":0.5,
                       "node_crash":{"node":"spine1","at_ms":5,"down_ms":5}}"#;
        assert!(ScenarioSpec::from_json_str(json).unwrap().node_crash.unwrap().cold);
    }

    #[test]
    fn bad_node_crash_specs_are_rejected() {
        for bad in [
            r#"{"node":"pod1","at_ms":1,"down_ms":1}"#,                // unknown tier
            r#"{"node":"leaf","at_ms":1,"down_ms":1}"#,                // no index
            r#"{"node":"leaf0","at_ms":1,"down_ms":0}"#,               // zero reboot window
            r#"{"node":"leaf0","down_ms":1}"#,                         // missing at_ms
            r#"{"node":"leaf0","at_ms":1,"down_ms":1,"state":"hot"}"#, // bad state
        ] {
            let json = format!(r#"{{"scheme":{{"name":"ecmp"}},"topology":{{"kind":"symmetric"}},"load":0.5,"node_crash":{bad}}}"#);
            assert!(ScenarioSpec::from_json_str(&json).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn control_loss_rate_is_validated() {
        let json = r#"{"scheme":{"name":"ecmp"},"topology":{"kind":"symmetric"},"load":0.5,"control_loss":1.5}"#;
        assert!(ScenarioSpec::from_json_str(json).is_err());
        let json = r#"{"scheme":{"name":"ecmp"},"topology":{"kind":"symmetric"},"load":0.5,"strict":"yes"}"#;
        assert!(ScenarioSpec::from_json_str(json).is_err());
    }

    #[test]
    fn strict_lossy_spec_runs_clean_end_to_end() {
        let json = r#"{"scheme":{"name":"clove-ecn"},"topology":{"kind":"symmetric"},
                       "load":0.3,"jobs_per_conn":2,"conns_per_client":1,"horizon_secs":10,
                       "control_loss":0.5,"control_loss_at_ms":5,"strict":true}"#;
        let spec = ScenarioSpec::from_json_str(json).unwrap();
        let report = spec.run().unwrap();
        assert!(report.strict);
        assert!(report.flows_completed > 0);
        assert!(report.to_json().render().contains("\"strict\":true"));
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let json = r#"{"scheme":{"name":"ecmp"},"topology":{"kind":"symmetric"},"load":0.5}"#;
        let spec = ScenarioSpec::from_json_str(json).unwrap();
        assert_eq!(spec.jobs_per_conn, 60);
        assert_eq!(spec.workload, "web-search");
        assert!(spec.fail_at_ms.is_none());
        let s = spec.to_scenario();
        assert_eq!(s.load, 0.5);
    }

    #[test]
    fn scheme_specs_map_to_schemes() {
        assert_eq!(Scheme::from(SchemeSpec::Mptcp { subflows: 4 }).label(), "MPTCP");
        assert_eq!(Scheme::from(SchemeSpec::Hula).label(), "HULA");
        assert_eq!(Scheme::from(SchemeSpec::Presto { weights: None }).label(), "Presto");
        assert_eq!(Scheme::from(SchemeSpec::Incremental { clove_hosts: 8 }).label(), "Clove-ECN (partial)");
    }

    #[test]
    fn tagged_scheme_variants_parse() {
        let m = SchemeSpec::from_json(&Json::parse(r#"{"name":"mptcp","subflows":4}"#).unwrap());
        assert_eq!(m.unwrap(), SchemeSpec::Mptcp { subflows: 4 });
        let p = SchemeSpec::from_json(&Json::parse(r#"{"name":"presto","weights":[0.5,0.5]}"#).unwrap());
        assert_eq!(p.unwrap(), SchemeSpec::Presto { weights: Some(vec![0.5, 0.5]) });
        assert!(SchemeSpec::from_json(&Json::parse(r#"{"name":"nope"}"#).unwrap()).is_err());
        assert!(SchemeSpec::from_json(&Json::parse(r#"{"name":"mptcp"}"#).unwrap()).is_err());
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let json = r#"{"scheme":{"name":"ecmp"},"topology":{"kind":"symmetric"},"load":0.5,"workload":"nope"}"#;
        let spec = ScenarioSpec::from_json_str(json).unwrap();
        assert!(spec.distribution().is_err());
    }

    #[test]
    fn tiny_spec_runs_end_to_end() {
        let json = r#"{"scheme":{"name":"clove-ecn"},"topology":{"kind":"asymmetric"},
                       "load":0.3,"jobs_per_conn":2,"conns_per_client":1,"horizon_secs":10}"#;
        let spec = ScenarioSpec::from_json_str(json).unwrap();
        let report = spec.run().unwrap();
        assert!(report.flows_completed > 0);
        let out_json = report.to_json().render();
        assert!(out_json.contains("avg_fct_s"));
    }

    #[test]
    fn multi_seed_report_is_identical_at_any_jobs_count() {
        let json = r#"{"scheme":{"name":"clove-ecn"},"topology":{"kind":"asymmetric"},
                       "load":0.3,"jobs_per_conn":2,"conns_per_client":1,"horizon_secs":10,
                       "seed":7,"seeds":3}"#;
        let spec = ScenarioSpec::from_json_str(json).unwrap();
        let serial = spec.run_jobs(1).unwrap();
        let parallel = spec.run_jobs(4).unwrap();
        assert_eq!(serial.to_json().render(), parallel.to_json().render());
        assert_eq!(serial.seeds, 3);
    }
}
