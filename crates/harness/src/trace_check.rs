//! Schema validation for `--trace` JSONL dumps (`clove-run trace-check`).
//!
//! A trace file is one JSON object per line, every line carrying the
//! versioned envelope `v`/`kind`/`t_ns` plus the kind-specific fields of
//! [`clove_telemetry::TraceEvent`]. This module re-parses a dump with the
//! harness's own JSON parser and checks every line against the schema
//! table below, so CI can assert that a freshly-written trace is valid
//! without any external tooling.
//!
//! Versioning: schemas are additive, so any version in
//! [`MIN_TRACE_SCHEMA_VERSION`]`..=`[`TRACE_SCHEMA_VERSION`] is accepted
//! per line — v1 dumps still validate under the v2 checker. Each kind
//! records the version that introduced it; a line whose kind postdates its
//! own `v` stamp is rejected (it could not have been written by that
//! schema), and unknown kinds report the line's version so a dump from a
//! *newer* schema produces an actionable error.

use crate::json::Json;
use clove_telemetry::TRACE_SCHEMA_VERSION;

/// Oldest schema version this checker still validates.
pub const MIN_TRACE_SCHEMA_VERSION: u64 = 1;

/// Required kind-specific fields per event kind, in schema order, plus the
/// schema version that introduced the kind. Must be kept in lockstep with
/// [`clove_telemetry::TraceEvent::write_jsonl`] (the golden schema test in
/// `tests/trace_schema.rs` pins both sides).
pub const TRACE_KIND_FIELDS: &[(&str, u64, &[&str])] = &[
    ("flowlet_create", 1, &["host", "dst", "flowlet_id", "port"]),
    ("flowlet_switch", 1, &["host", "dst", "flowlet_id", "port", "prev_port", "idle_ns"]),
    ("flowlet_expire", 1, &["host", "dst", "flowlet_id", "port", "idle_ns"]),
    ("weight_update", 1, &["host", "dst", "port", "weight_ppm", "cause"]),
    ("ecn_mark", 1, &["link", "marks"]),
    ("int_reading", 1, &["host", "port", "util_pm"]),
    ("ladder_transition", 1, &["host", "dst", "from", "to"]),
    ("path_eviction", 1, &["host", "dst", "port"]),
    ("fault_activation", 1, &["link", "action", "announced"]),
    ("control_fault", 1, &["action"]),
    ("node_fault_activation", 2, &["node", "index", "action", "cold"]),
    ("vswitch_restart", 2, &["host", "cold"]),
    ("state_flush", 2, &["node", "index", "what"]),
];

/// Result of checking one trace dump: total lines plus per-kind counts in
/// [`TRACE_KIND_FIELDS`] order (kinds with zero events included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheckReport {
    /// Validated event lines.
    pub lines: u64,
    /// `(kind, count)` in schema-table order.
    pub kinds: Vec<(&'static str, u64)>,
}

impl TraceCheckReport {
    /// Human-readable summary (one line per kind with events).
    pub fn render(&self) -> String {
        let mut out = format!("trace-check: {} event(s) valid\n", self.lines);
        for &(kind, count) in &self.kinds {
            if count > 0 {
                out.push_str(&format!("  {kind}: {count}\n"));
            }
        }
        out
    }
}

/// Validate a JSONL trace dump against the event schema. Returns per-kind
/// counts on success; the error names the first offending line.
pub fn check_trace_jsonl(text: &str) -> Result<TraceCheckReport, String> {
    let mut counts = vec![0u64; TRACE_KIND_FIELDS.len()];
    let mut lines = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        let v = Json::parse(line).map_err(|e| format!("line {n}: not valid JSON: {e}"))?;
        if !matches!(v, Json::Obj(_)) {
            return Err(format!("line {n}: not a JSON object"));
        }
        let version = match v.get("v").and_then(Json::as_u64) {
            Some(ver) if (MIN_TRACE_SCHEMA_VERSION..=TRACE_SCHEMA_VERSION).contains(&ver) => ver,
            Some(other) => {
                return Err(format!("line {n}: schema version {other}, expected {MIN_TRACE_SCHEMA_VERSION}..={TRACE_SCHEMA_VERSION}"));
            }
            None => return Err(format!("line {n}: missing integer field 'v'")),
        };
        if v.get("t_ns").and_then(Json::as_u64).is_none() {
            return Err(format!("line {n}: missing integer field 't_ns'"));
        }
        let kind = v.get("kind").and_then(Json::as_str).ok_or_else(|| format!("line {n}: missing string field 'kind'"))?;
        let Some(ki) = TRACE_KIND_FIELDS.iter().position(|&(k, _, _)| k == kind) else {
            return Err(format!("line {n}: unknown event kind '{kind}' (line declares schema version {version}, checker knows v{TRACE_SCHEMA_VERSION})"));
        };
        let (_, since, fields) = TRACE_KIND_FIELDS[ki];
        if version < since {
            return Err(format!("line {n}: kind '{kind}' requires schema version {since}, but line declares version {version}"));
        }
        for &field in fields {
            if v.get(field).is_none() {
                return Err(format!("line {n}: kind '{kind}' missing field '{field}'"));
            }
        }
        counts[ki] += 1;
        lines += 1;
    }
    Ok(TraceCheckReport { lines, kinds: TRACE_KIND_FIELDS.iter().zip(counts).map(|(&(k, _, _), c)| (k, c)).collect() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clove_telemetry::{render_jsonl, LadderRung, TraceEvent};

    #[test]
    fn rendered_events_of_every_kind_validate() {
        let events = vec![
            TraceEvent::FlowletCreate { t_ns: 1, host: 0, dst: 1, flowlet_id: 7, port: 49152 },
            TraceEvent::FlowletSwitch { t_ns: 2, host: 0, dst: 1, flowlet_id: 8, port: 49153, prev_port: 49152, idle_ns: 600 },
            TraceEvent::FlowletExpire { t_ns: 3, host: 0, dst: 1, flowlet_id: 8, port: 49153, idle_ns: 9000 },
            TraceEvent::WeightUpdate { t_ns: 4, host: 0, dst: 1, port: 49152, weight_ppm: 500_000, cause: "ecn_cut" },
            TraceEvent::EcnMark { t_ns: 5, link: 3, marks: 2 },
            TraceEvent::IntReading { t_ns: 6, host: 0, port: 49152, util_pm: 412 },
            TraceEvent::LadderTransition { t_ns: 7, host: 0, dst: 1, from: LadderRung::Fresh, to: LadderRung::Stale },
            TraceEvent::PathEviction { t_ns: 8, host: 0, dst: 1, port: 49152 },
            TraceEvent::FaultActivation { t_ns: 9, link: 3, action: "down", announced: true },
            TraceEvent::ControlFault { t_ns: 10, action: "set_probe_loss" },
            TraceEvent::NodeFaultActivation { t_ns: 11, node: "leaf", index: 1, action: "down", cold: true },
            TraceEvent::VswitchRestart { t_ns: 12, host: 0, cold: true },
            TraceEvent::StateFlush { t_ns: 13, node: "host", index: 0, what: "vswitch" },
        ];
        let report = check_trace_jsonl(&render_jsonl(&events)).unwrap();
        assert_eq!(report.lines, 13);
        assert!(report.kinds.iter().all(|&(_, c)| c == 1), "every kind seen once: {:?}", report.kinds);
        assert!(report.render().contains("13 event(s) valid"));
    }

    #[test]
    fn v1_dumps_still_validate() {
        // A dump written by the v1 schema: v1 envelope, v1 kinds only.
        let v1_dump = concat!(
            "{\"v\":1,\"kind\":\"ecn_mark\",\"t_ns\":5,\"link\":3,\"marks\":2}\n",
            "{\"v\":1,\"kind\":\"fault_activation\",\"t_ns\":9,\"link\":3,\"action\":\"down\",\"announced\":true}\n",
        );
        let report = check_trace_jsonl(v1_dump).unwrap();
        assert_eq!(report.lines, 2);
    }

    #[test]
    fn v2_only_kinds_are_rejected_on_v1_lines() {
        let line = "{\"v\":1,\"kind\":\"node_fault_activation\",\"t_ns\":1,\"node\":\"leaf\",\"index\":0,\"action\":\"down\",\"cold\":true}";
        let err = check_trace_jsonl(line).unwrap_err();
        assert!(err.contains("requires schema version 2"), "{err}");
        assert!(err.contains("declares version 1"), "{err}");
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        assert!(check_trace_jsonl("not json").unwrap_err().contains("line 1"));
        let wrong_version = "{\"v\":999,\"kind\":\"ecn_mark\",\"t_ns\":1,\"link\":0,\"marks\":1}";
        assert!(check_trace_jsonl(wrong_version).unwrap_err().contains("schema version 999"));
        let unknown_kind = "{\"v\":1,\"kind\":\"nope\",\"t_ns\":1}";
        let unknown_err = check_trace_jsonl(unknown_kind).unwrap_err();
        assert!(unknown_err.contains("unknown event kind"));
        // Unknown-kind errors are versioned: they name the line's declared
        // version and the checker's ceiling.
        assert!(unknown_err.contains("schema version 1"), "{unknown_err}");
        assert!(unknown_err.contains("v2"), "{unknown_err}");
        let missing_field = "{\"v\":1,\"kind\":\"ecn_mark\",\"t_ns\":1,\"link\":0}";
        assert!(check_trace_jsonl(missing_field).unwrap_err().contains("missing field 'marks'"));
    }
}
