//! The ECMP baseline: static, congestion-oblivious flow hashing.

use clove_net::packet::Packet;
use clove_net::types::HostId;
use clove_overlay::EdgePolicy;
use clove_sim::Time;

/// Outer source port = hash(inner five-tuple): each flow takes one path
/// for its entire lifetime, however long and however congested — the
/// behaviour every other scheme improves on.
pub struct EcmpPolicy {
    /// Port span the hash spreads over (≫ number of paths so ECMP sees an
    /// effectively random port per flow).
    pub span: u16,
}

impl Default for EcmpPolicy {
    fn default() -> Self {
        EcmpPolicy { span: 4096 }
    }
}

impl EdgePolicy for EcmpPolicy {
    fn name(&self) -> &'static str {
        "ecmp"
    }

    fn select_port(&mut self, _now: Time, _dst: HostId, pkt: &mut Packet) -> u16 {
        let h = clove_net::hash::hash_tuple(&pkt.flow, 0xEC3B);
        49152 + (h % self.span as u64) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clove_net::packet::PacketKind;
    use clove_net::types::FlowKey;

    fn pkt(sport: u16) -> Packet {
        Packet::new(1, 1500, FlowKey::tcp(HostId(0), HostId(1), sport, 80), PacketKind::Data { seq: 0, len: 1400, dsn: 0 })
    }

    #[test]
    fn stable_per_flow_forever() {
        let mut p = EcmpPolicy::default();
        let mut a = pkt(1000);
        let port = p.select_port(Time::ZERO, HostId(1), &mut a);
        for t in [1u64, 1000, 1_000_000_000] {
            assert_eq!(p.select_port(Time::from_nanos(t), HostId(1), &mut a), port);
        }
    }

    #[test]
    fn different_flows_spread() {
        let mut p = EcmpPolicy::default();
        let mut seen = rustc_hash::FxHashSet::default();
        for s in 0..256 {
            let mut a = pkt(s);
            seen.insert(p.select_port(Time::ZERO, HostId(1), &mut a));
        }
        assert!(seen.len() > 200, "poor spread: {}", seen.len());
    }
}
