//! Presto adapted to L3 ECMP (paper §5).
//!
//! The source vswitch chops each flow into fixed-size flowcells (64 KB —
//! one TSO segment) and assigns each flowcell the next encapsulation source
//! port from a weighted round-robin over a pre-computed port set. Weights
//! are *static*: under asymmetry the paper grants Presto ideal
//! oracle-configured weights (e.g. 0.33/0.33/0.17/0.17 when one of four
//! paths halves), and still shows it losing to congestion-aware schemes —
//! reproducing that requires honouring the same oracle here, via
//! [`PrestoConfig::weights`].
//!
//! Reordering caused by the spraying is hidden from the guest by the
//! receive-side reassembly in `clove_overlay::presto_rx`.

use clove_core::Wrr;
use clove_net::packet::Packet;
use clove_net::types::{FlowKey, HostId};
use clove_overlay::EdgePolicy;
use clove_sim::Time;
use rustc_hash::FxHashMap;

/// Presto tuning.
#[derive(Debug, Clone)]
pub struct PrestoConfig {
    /// Flowcell size in payload bytes (Presto: 64 KB).
    pub flowcell_bytes: u64,
    /// Static path weights applied to every destination's port set, in
    /// port order; `None` = uniform. (The oracle weights for asymmetric
    /// topologies.)
    pub weights: Option<Vec<f64>>,
}

impl Default for PrestoConfig {
    fn default() -> Self {
        PrestoConfig { flowcell_bytes: 64 * 1024, weights: None }
    }
}

#[derive(Default)]
struct FlowState {
    bytes_seen: u64,
    current_cell: u32,
    current_port: u16,
}

/// The Presto sender policy. See module docs.
pub struct PrestoPolicy {
    cfg: PrestoConfig,
    /// Per-destination WRR over discovered ports.
    wrr: FxHashMap<HostId, Wrr>,
    flows: FxHashMap<FlowKey, FlowState>,
}

impl PrestoPolicy {
    /// Build the policy.
    pub fn new(cfg: PrestoConfig) -> PrestoPolicy {
        PrestoPolicy { cfg, wrr: FxHashMap::default(), flows: FxHashMap::default() }
    }

    fn fallback_port(flow: &FlowKey, cell: u32) -> u16 {
        49152 + (clove_net::hash::hash_tuple(flow, cell as u64 ^ 0x9E57) % 64) as u16
    }
}

impl EdgePolicy for PrestoPolicy {
    fn name(&self) -> &'static str {
        "presto"
    }

    fn select_port(&mut self, _now: Time, dst: HostId, pkt: &mut Packet) -> u16 {
        let payload = match pkt.kind {
            clove_net::packet::PacketKind::Data { len, .. } => len as u64,
            _ => 0,
        };
        let st = self.flows.entry(pkt.flow).or_default();
        let cell = (st.bytes_seen / self.cfg.flowcell_bytes) as u32;
        // +1 so cell ids start at 1 and 0 means "no cell assigned".
        if cell + 1 != st.current_cell {
            st.current_cell = cell + 1;
            st.current_port = match self.wrr.get_mut(&dst).and_then(|w| w.pick()) {
                Some(p) => p,
                None => Self::fallback_port(&pkt.flow, cell),
            };
        }
        st.bytes_seen += payload;
        pkt.flowcell = st.current_cell;
        st.current_port
    }

    fn on_paths_updated(&mut self, _now: Time, dst: HostId, ports: &[u16]) {
        let wrr = self.wrr.entry(dst).or_default();
        wrr.set_ports(ports);
        if let Some(weights) = &self.cfg.weights {
            for (i, &p) in ports.iter().enumerate() {
                if let Some(&w) = weights.get(i) {
                    wrr.set_weight(p, w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clove_net::packet::PacketKind;
    use rustc_hash::{FxHashMap, FxHashSet};

    fn pkt(sport: u16, seq: u64) -> Packet {
        Packet::new(seq, 1500, FlowKey::tcp(HostId(0), HostId(1), sport, 80), PacketKind::Data { seq, len: 1400, dsn: seq })
    }

    fn policy() -> PrestoPolicy {
        let mut p = PrestoPolicy::new(PrestoConfig::default());
        p.on_paths_updated(Time::ZERO, HostId(1), &[10, 20, 30, 40]);
        p
    }

    #[test]
    fn packets_within_a_flowcell_share_a_port() {
        let mut p = policy();
        let mut ports = FxHashSet::default();
        // 64 KB / 1400 B = ~46 packets per cell; first 40 stay in cell 1.
        for i in 0..40u64 {
            let mut a = pkt(1000, i * 1400);
            ports.insert(p.select_port(Time::ZERO, HostId(1), &mut a));
            assert_eq!(a.flowcell, 1);
        }
        assert_eq!(ports.len(), 1);
    }

    #[test]
    fn flowcell_boundary_rotates_port() {
        let mut p = policy();
        let mut cells = FxHashMap::default();
        for i in 0..200u64 {
            let mut a = pkt(1000, i * 1400);
            let port = p.select_port(Time::ZERO, HostId(1), &mut a);
            cells.entry(a.flowcell).or_insert(port);
        }
        // 200 × 1400 B = 280 KB → 5 flowcells over 4 ports: rotation must
        // visit every port.
        assert!(cells.len() >= 4, "cells: {cells:?}");
        let distinct: FxHashSet<u16> = cells.values().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn static_weights_respected() {
        let mut p = PrestoPolicy::new(PrestoConfig {
            flowcell_bytes: 1400, // one packet per cell for the test
            weights: Some(vec![0.33, 0.33, 0.17, 0.17]),
        });
        p.on_paths_updated(Time::ZERO, HostId(1), &[10, 20, 30, 40]);
        let mut counts: FxHashMap<u16, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            let mut a = pkt(1000, i * 1400);
            *counts.entry(p.select_port(Time::ZERO, HostId(1), &mut a)).or_insert(0) += 1;
        }
        let r = counts[&10] as f64 / counts[&30] as f64;
        assert!((1.5..2.5).contains(&r), "ratio {r}: {counts:?}");
    }

    #[test]
    fn weights_are_congestion_oblivious() {
        use clove_net::packet::Feedback;
        let mut p = policy();
        // Presto ignores feedback entirely.
        p.on_feedback(Time::ZERO, HostId(1), &Feedback::Ecn { sport: 10, congested: true });
        let mut counts: FxHashMap<u16, usize> = FxHashMap::default();
        for f in 0..400u16 {
            let mut a = pkt(2000 + f, 0);
            *counts.entry(p.select_port(Time::ZERO, HostId(1), &mut a)).or_insert(0) += 1;
        }
        assert_eq!(counts[&10], 100, "still equal share after ECN: {counts:?}");
    }

    #[test]
    fn fallback_without_discovery() {
        let mut p = PrestoPolicy::new(PrestoConfig::default());
        let mut a = pkt(1, 0);
        assert!(p.select_port(Time::ZERO, HostId(9), &mut a) >= 49152);
    }
}
