#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # clove-baselines — the schemes the paper compares against
//!
//! * [`EcmpPolicy`] — the status quo: the outer source port is a static
//!   hash of the inner five-tuple, so ECMP pins each flow to one path for
//!   its lifetime (paper §5 "ECMP").
//! * [`PrestoPolicy`] — Presto adapted to L3 ECMP exactly as the paper's
//!   re-implementation does (§5 "Presto"): 64 KB flowcells rotate through a
//!   pre-computed set of encapsulation source ports with *static* weights
//!   (the paper grants Presto ideal, oracle-configured weights under
//!   asymmetry); the receiving vswitch reassembles out-of-order flowcells
//!   (`clove_overlay::presto_rx`).
//! * CONGA and LetFlow live in the fabric (`clove_net::switch`), since
//!   they replace switch behaviour; [`fabric_schemes`] provides the
//!   configurations used by the experiments.
//! * MPTCP is a transport, not a vswitch policy: see `clove_tcp::mptcp`.

pub mod ecmp;
pub mod presto;

pub use ecmp::EcmpPolicy;
pub use presto::{PrestoConfig, PrestoPolicy};

/// Ready-made fabric-scheme configurations for the paper's in-network
/// comparison points.
pub mod fabric_schemes {
    use clove_net::switch::{CongaConfig, FabricScheme, HulaConfig, LetFlowConfig};
    use clove_sim::Duration;

    /// Plain ECMP fabric (what every edge scheme runs over).
    pub fn ecmp() -> FabricScheme {
        FabricScheme::Ecmp
    }

    /// CONGA with the given flowlet gap (CONGA uses ~500 µs at 10/40G).
    pub fn conga(flowlet_gap: Duration) -> FabricScheme {
        FabricScheme::Conga(CongaConfig { flowlet_gap, quant_bits: 3, metric_age: flowlet_gap * 20 })
    }

    /// LetFlow with the given flowlet gap.
    pub fn letflow(flowlet_gap: Duration) -> FabricScheme {
        FabricScheme::LetFlow(LetFlowConfig { flowlet_gap })
    }

    /// HULA with the given probe interval and flowlet gap (paper §8).
    pub fn hula(probe_interval: Duration, flowlet_gap: Duration) -> FabricScheme {
        FabricScheme::Hula(HulaConfig { probe_interval, flowlet_gap, entry_age: probe_interval * 20 })
    }
}
