#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! Benches and figure binaries live in `benches/` and `src/bin/`.
