//! Benches and figure binaries live in `benches/` and `src/bin/`.
