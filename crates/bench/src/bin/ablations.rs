#![warn(clippy::unwrap_used)]

//! Ablation studies for the design choices DESIGN.md §7 calls out.
//!
//! ```text
//! cargo run --release -p clove-bench --bin ablations [--quick] [--jobs N] [--queue wheel|heap]
//! ```
//!
//! Each ablation flips one calibration decision and reports Clove-ECN's
//! average FCT on the asymmetric testbed at 60% load:
//!
//! 1. **DSACK undo off** — quantifies how much spurious-retransmission
//!    undo matters for a path-switching scheme.
//! 2. **Weight recovery off** (`recovery_rho = 0`) — the paper's literal
//!    cut-and-redistribute with no drift back to uniform.
//! 3. **Per-packet relaying** (`relay_interval ≈ 0`) — the paper's §3.2
//!    warning about "unnecessarily aggressive manipulation of path
//!    weights" when ECN is relayed on every packet.
//! 4. **Discovery off** (fallback hash ports) — what Clove loses without
//!    its traceroute component (ports no longer map to disjoint paths).
//!
//! The ablations are independent runs, so `--jobs N` executes them
//! concurrently; results print in ablation order regardless. Completed
//! ablations are checkpointed to `results/.journal/ablations/`; `--resume`
//! serves them from disk after an interrupted run. An ablation that panics
//! or stalls is quarantined and reported in place of its result line.

use clove_harness::orchestrator::{self, CellOutcome, ExecPolicy};
use clove_harness::scenario::{Scenario, TopologyKind};
use clove_harness::{Journal, Scheme};
use clove_sim::{Duration, QueueBackend, RunControl, Time};
use clove_workload::web_search;
use std::sync::Arc;

/// One ablation: display label plus the scenario tweak it applies.
/// Plain function pointers keep the cell type `Sync` for the orchestrator.
struct Ablation {
    label: &'static str,
    tweak: fn(&mut Scenario),
}

fn run(cell: &Ablation, jobs_per_conn: u32, queue: QueueBackend, control: &Arc<RunControl>) -> String {
    let mut s = Scenario::new(Scheme::CloveEcn, TopologyKind::Asymmetric, 0.6, 4040);
    s.jobs_per_conn = jobs_per_conn;
    s.conns_per_client = 2;
    s.horizon = Time::from_secs(30);
    s.queue = queue;
    s.control = Some(Arc::clone(control));
    (cell.tweak)(&mut s);
    let out = s.run_rpc(&web_search());
    format!(
        "{:<34} avg={:.4}s p99={:.4}s rtx={} undo={} timeouts={}",
        cell.label,
        out.fct.avg(),
        {
            let mut f = out.fct.clone();
            f.p99()
        },
        out.retransmits,
        out.spurious_undos,
        out.timeouts,
    )
}

/// Parse `--jobs N` / `--jobs=N` (default 1 = serial).
fn parse_jobs(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            return it.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or(1);
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok().filter(|&n| n >= 1).unwrap_or(1);
        }
    }
    1
}

/// Parse `--queue wheel|heap` / `--queue=...` (default: timing wheel).
fn parse_queue(args: &[String]) -> QueueBackend {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let v = if a == "--queue" { it.next().map(String::as_str) } else { a.strip_prefix("--queue=") };
        if let Some(v) = v {
            return v.parse().unwrap_or_else(|e| {
                eprintln!("ablations: {e}");
                std::process::exit(2);
            });
        }
    }
    QueueBackend::default()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let resume = args.iter().any(|a| a == "--resume");
    let jobs = parse_jobs(&args);
    let queue = parse_queue(&args);
    let jobs_per_conn = if quick { 20 } else { 100 };
    let journal = match Journal::open("results/.journal/ablations", resume) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("ablations: warning: no checkpoint journal ({e}); running without one");
            None
        }
    };
    println!("Clove-ECN ablations — asymmetric testbed, 60% load, {jobs_per_conn} jobs/conn\n");

    let cells = [
        Ablation { label: "baseline (all mechanisms on)", tweak: |_| {} },
        Ablation {
            label: "1. DSACK undo OFF",
            tweak: |s| {
                s.profile.dsack_undo = false;
            },
        },
        Ablation {
            label: "2. weight recovery OFF",
            tweak: |s| {
                // recovery_rho lives inside the policy config derived from
                // the profile's loaded RTT; zero the drift via the
                // env-independent profile knob.
                s.profile.clove_recovery_rho = 0.0;
            },
        },
        Ablation {
            label: "3. per-packet ECN relaying",
            tweak: |s| {
                s.profile.relay_interval = Duration::from_nanos(1);
            },
        },
        Ablation {
            label: "4. flowlet gap 10x (elephant collisions)",
            tweak: |s| {
                s.profile.flowlet_gap = Duration::from_micros(1000);
            },
        },
    ];
    let (outcomes, stats) = orchestrator::run_journaled(
        &cells,
        jobs,
        ExecPolicy::default(),
        None, // five near-identical Clove-ECN runs: uniform cost
        journal.as_ref().map(|j| (j, "ablations")),
        |cell: &Ablation| format!("ablation|{}|jpc{}", cell.label, jobs_per_conn),
        |cell, control| run(cell, jobs_per_conn, queue, control),
    );
    let mut quarantined = 0u32;
    for (cell, outcome) in cells.iter().zip(outcomes) {
        match outcome {
            CellOutcome::Ok(line) => println!("{line}"),
            bad => {
                println!("{:<34} QUARANTINED ({})", cell.label, bad.describe());
                quarantined += 1;
            }
        }
    }
    if stats.journal_hits > 0 {
        eprintln!("ablations: resumed {} ablation(s) from the journal", stats.journal_hits);
    }
    println!("\nBaseline should win or tie every ablation; the margins quantify");
    println!("each mechanism's contribution (DESIGN.md section 7).");
    if quarantined > 0 {
        eprintln!("ablations: {quarantined} ablation(s) quarantined");
        std::process::exit(3);
    }
}
