//! Ablation studies for the design choices DESIGN.md §7 calls out.
//!
//! ```text
//! cargo run --release -p clove-bench --bin ablations [--quick]
//! ```
//!
//! Each ablation flips one calibration decision and reports Clove-ECN's
//! average FCT on the asymmetric testbed at 60% load:
//!
//! 1. **DSACK undo off** — quantifies how much spurious-retransmission
//!    undo matters for a path-switching scheme.
//! 2. **Weight recovery off** (`recovery_rho = 0`) — the paper's literal
//!    cut-and-redistribute with no drift back to uniform.
//! 3. **Per-packet relaying** (`relay_interval ≈ 0`) — the paper's §3.2
//!    warning about "unnecessarily aggressive manipulation of path
//!    weights" when ECN is relayed on every packet.
//! 4. **Discovery off** (fallback hash ports) — what Clove loses without
//!    its traceroute component (ports no longer map to disjoint paths).

use clove_harness::scenario::{Scenario, TopologyKind};
use clove_harness::Scheme;
use clove_sim::{Duration, Time};
use clove_workload::web_search;

fn run(label: &str, tweak: impl Fn(&mut Scenario), jobs: u32) {
    let mut s = Scenario::new(Scheme::CloveEcn, TopologyKind::Asymmetric, 0.6, 4040);
    s.jobs_per_conn = jobs;
    s.conns_per_client = 2;
    s.horizon = Time::from_secs(30);
    tweak(&mut s);
    let out = s.run_rpc(&web_search());
    println!(
        "{label:<34} avg={:.4}s p99={:.4}s rtx={} undo={} timeouts={}",
        out.fct.avg(),
        {
            let mut f = out.fct.clone();
            f.p99()
        },
        out.retransmits,
        out.spurious_undos,
        out.timeouts,
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = if quick { 20 } else { 100 };
    println!("Clove-ECN ablations — asymmetric testbed, 60% load, {jobs} jobs/conn\n");

    run("baseline (all mechanisms on)", |_| {}, jobs);
    run(
        "1. DSACK undo OFF",
        |s| {
            s.profile.dsack_undo = false;
        },
        jobs,
    );
    run(
        "2. weight recovery OFF",
        |s| {
            // recovery_rho lives inside the policy config derived from the
            // profile's loaded RTT; zero the drift via a custom profile
            // hook: loaded_rtt stays, rho is a CloveEcnConfig field set by
            // the scheme builder — expose through the env-independent
            // profile knob below.
            s.profile.clove_recovery_rho = 0.0;
        },
        jobs,
    );
    run(
        "3. per-packet ECN relaying",
        |s| {
            s.profile.relay_interval = Duration::from_nanos(1);
        },
        jobs,
    );
    run(
        "4. flowlet gap 10x (elephant collisions)",
        |s| {
            s.profile.flowlet_gap = Duration::from_micros(1000);
        },
        jobs,
    );
    println!("\nBaseline should win or tie every ablation; the margins quantify");
    println!("each mechanism's contribution (DESIGN.md section 7).");
}
