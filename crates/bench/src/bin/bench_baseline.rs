#![warn(clippy::unwrap_used)]

//! Wall-clock baseline for the figure suite: serial vs. parallel.
//!
//! ```text
//! cargo run --release -p clove-bench --bin bench_baseline -- [--jobs N] [--out FILE] [--check FILE] [--queue wheel|heap]
//! ```
//!
//! Runs each smoke-scale figure group twice — `--jobs 1` and `--jobs N`
//! (default: the machine's available parallelism) — and writes a JSON
//! report with `{wall_s, events, events_per_sec, jobs}` per group plus
//! the measured speedup. The committed `BENCH_baseline.json` at the repo
//! root records the reference numbers EXPERIMENTS.md quotes. The report
//! also carries an `event_mix` section — peak pending events, the
//! push-to-pop delay histogram, and the per-kind event-loop dispatch
//! profile from representative cells — the measured footprint the timing
//! wheel's level geometry is sized against — plus a `phases` section with
//! wall-clock per-phase timings of the bench itself.
//!
//! `--check FILE` compares this run's serial throughput against a
//! previously committed report and exits non-zero if aggregate
//! events/sec regressed by more than 15% — the CI `bench-smoke` gate.
//!
//! `--queue heap` times the legacy binary-heap backend instead of the
//! timing wheel (the committed baseline is always the wheel).
//!
//! Completed groups (their measured samples, timing included) are
//! checkpointed to `results/.journal/bench/`; `--resume` serves groups an
//! earlier interrupted invocation already timed, so only the remainder
//! re-runs. The report is written atomically (temp file + rename), so a
//! crash mid-write never corrupts a committed baseline.

use clove_harness::experiments::{self, ExpConfig, PointCache};
use clove_harness::json::Json;
use clove_harness::scenario::{Scenario, TopologyKind};
use clove_harness::{write_atomic, Journal, Scheme};
use clove_net::EVENT_KIND_NAMES;
use clove_sim::{QueueBackend, QueueProfile, Time};
use clove_telemetry::LoopProfile;
use clove_workload::web_search;
use std::path::Path;
use std::time::Instant;

/// One figure group: a name plus the runs it executes against a fresh
/// cache. Groups mirror how `figures` shares caches (4c with 5a–5c, 8b
/// with 9), so each group's event count is the cache's event total.
struct Group {
    name: &'static str,
    run: fn(&ExpConfig, &mut PointCache),
}

const GROUPS: [Group; 4] = [
    Group {
        name: "fig4b",
        run: |cfg, cache| {
            experiments::fig4b_cached(&[0.5, 0.8], cfg, cache);
        },
    },
    Group {
        name: "fig4c+fig5",
        run: |cfg, cache| {
            let loads = [0.3, 0.5, 0.7];
            experiments::fig4c_cached(&loads, cfg, cache);
            experiments::fig5a_cached(&loads, cfg, cache);
            experiments::fig5b_cached(&loads, cfg, cache);
            experiments::fig5c_cached(&loads, cfg, cache);
        },
    },
    Group {
        name: "fig8a",
        run: |cfg, cache| {
            experiments::fig8a_cached(&[0.5, 0.8], cfg, cache);
        },
    },
    Group {
        name: "fig8b+fig9",
        run: |cfg, cache| {
            experiments::fig8b_cached(&[0.3, 0.5, 0.7], cfg, cache);
            experiments::fig9_cached(cfg, cache);
        },
    },
];

/// One timed execution of a group at a given worker count.
struct Sample {
    wall_s: f64,
    events: u64,
    jobs: usize,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("wall_s".to_string(), Json::Num(self.wall_s)),
            ("events".to_string(), Json::Num(self.events as f64)),
            ("events_per_sec".to_string(), Json::Num(self.events_per_sec())),
            ("jobs".to_string(), Json::Num(self.jobs as f64)),
        ])
    }
}

fn sample_from_json(v: &Json) -> Option<Sample> {
    Some(Sample {
        wall_s: v.get("wall_s").and_then(Json::as_f64)?,
        events: v.get("events").and_then(Json::as_f64)? as u64,
        jobs: v.get("jobs").and_then(Json::as_f64)? as usize,
    })
}

/// The serial/parallel sample pair as one journal entry (a JSON string —
/// the journal's `String` codec keeps this bin free of custom impls).
fn pair_encode(serial: &Sample, parallel: &Sample) -> String {
    Json::Obj(vec![("serial".to_string(), serial.to_json()), ("parallel".to_string(), parallel.to_json())]).render()
}

fn pair_decode(text: &str) -> Option<(Sample, Sample)> {
    let doc = Json::parse(text).ok()?;
    Some((sample_from_json(doc.get("serial")?)?, sample_from_json(doc.get("parallel")?)?))
}

fn time_group(group: &Group, jobs: usize, queue: QueueBackend) -> Sample {
    // Smoke scale: big enough that events/sec is stable, small enough for
    // CI. Seeds=2 so the seed axis parallelizes too.
    let cfg = ExpConfig { jobs_per_conn: 8, conns_per_client: 1, seeds: 2, horizon_secs: 10, jobs, strict: false, queue, ..ExpConfig::quick() };
    let mut cache = PointCache::new();
    let start = Instant::now();
    (group.run)(&cfg, &mut cache);
    Sample { wall_s: start.elapsed().as_secs_f64(), events: cache.events, jobs }
}

/// Registration-ordered JSON view of a [`LoopProfile`]: per-kind dispatch
/// counts and sim-time occupancy. Deterministic — both numbers are pure
/// functions of the event sequence.
fn loop_profile_json(profile: &LoopProfile) -> Json {
    Json::Obj(
        profile
            .kinds()
            .iter()
            .map(|k| {
                (
                    k.name.to_string(),
                    Json::Obj(vec![("count".to_string(), Json::Num(k.count as f64)), ("occupancy_ns".to_string(), Json::Num(k.occupancy_ns as f64))]),
                )
            })
            .collect(),
    )
}

/// The event-mix profile: peak pending events, the push-to-pop delay
/// histogram, and the event-loop dispatch profile, merged over cells
/// spanning the scheme/topology extremes the figures exercise. The delay
/// histogram is the measured distribution the timing wheel's level
/// geometry (8-bit slots, 6 levels) is sized against; the loop profile
/// shows where the event loop's sim-time goes per event kind.
fn event_mix(queue: QueueBackend) -> Json {
    let cells: [(&str, Scheme, TopologyKind, f64); 4] = [
        ("ecmp-sym-50", Scheme::Ecmp, TopologyKind::Symmetric, 0.5),
        ("clove-ecn-asym-70", Scheme::CloveEcn, TopologyKind::Asymmetric, 0.7),
        ("conga-asym-70", Scheme::Conga, TopologyKind::Asymmetric, 0.7),
        ("mptcp-sym-80", Scheme::Mptcp { subflows: 4 }, TopologyKind::Symmetric, 0.8),
    ];
    let dist = web_search();
    let mut merged = QueueProfile::default();
    let mut merged_loop = LoopProfile::new(EVENT_KIND_NAMES);
    let mut per_cell = Vec::new();
    for (name, scheme, topology, load) in cells {
        let mut s = Scenario::new(scheme, topology, load, 1000);
        s.jobs_per_conn = 8;
        s.conns_per_client = 1;
        s.horizon = Time::from_secs(10);
        s.queue = queue;
        let out = s.run_rpc(&dist);
        let profile = out.queue_profile;
        per_cell.push((
            name.to_string(),
            Json::Obj(vec![
                ("peak_pending".to_string(), Json::Num(profile.peak_pending as f64)),
                ("events".to_string(), Json::Num(profile.total() as f64)),
                ("loop_profile".to_string(), loop_profile_json(&out.loop_profile)),
            ]),
        ));
        merged.merge(&profile);
        merged_loop.merge(&out.loop_profile);
    }
    Json::Obj(vec![
        ("peak_pending".to_string(), Json::Num(merged.peak_pending as f64)),
        ("events".to_string(), Json::Num(merged.total() as f64)),
        // Bucket 0 = same-instant pushes; bucket k ≥ 1 = [2^(k-1), 2^k) ns.
        ("delay_hist_log2_ns".to_string(), Json::Arr(merged.trimmed_hist().iter().map(|&c| Json::Num(c as f64)).collect())),
        ("loop_profile".to_string(), loop_profile_json(&merged_loop)),
        ("cells".to_string(), Json::Obj(per_cell)),
    ])
}

fn parse_flag<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().map(|s| s.as_str());
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v);
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let jobs = parse_flag(&args, "--jobs").and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(|| cpus.max(2));
    let out_path = parse_flag(&args, "--out").unwrap_or("BENCH_baseline.json").to_string();
    let check_path = parse_flag(&args, "--check").map(str::to_string);
    let queue: QueueBackend = match parse_flag(&args, "--queue").map(str::parse).transpose() {
        Ok(q) => q.unwrap_or_default(),
        Err(e) => {
            eprintln!("bench_baseline: {e}");
            std::process::exit(2);
        }
    };
    let resume = args.iter().any(|a| a == "--resume");
    let journal = match Journal::open("results/.journal/bench", resume) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("bench_baseline: warning: no checkpoint journal ({e}); running without one");
            None
        }
    };

    eprintln!("bench_baseline: {cpus} cpu(s), {} backend, comparing --jobs 1 vs --jobs {jobs}", queue.name());
    let groups_start = Instant::now();
    let mut figures = Vec::new();
    let (mut serial_wall, mut parallel_wall, mut serial_events) = (0.0f64, 0.0f64, 0u64);
    for group in &GROUPS {
        let key = format!("{}|jobs{}|{}", group.name, jobs, queue.name());
        let checkpoint = journal.as_ref().and_then(|j| j.load::<String>("bench", &key)).and_then(|text| pair_decode(&text));
        let resumed = checkpoint.is_some();
        let (serial, parallel) = checkpoint.unwrap_or_else(|| {
            let pair = (time_group(group, 1, queue), time_group(group, jobs, queue));
            if let Some(j) = &journal {
                j.store("bench", &key, &pair_encode(&pair.0, &pair.1));
            }
            pair
        });
        if resumed {
            eprintln!("  {:<12} resumed from the journal", group.name);
        }
        assert_eq!(serial.events, parallel.events, "{}: event counts must not depend on --jobs", group.name);
        eprintln!(
            "  {:<12} serial {:.3}s  --jobs {} {:.3}s  ({:.2}x, {:.0} ev/s serial)",
            group.name,
            serial.wall_s,
            jobs,
            parallel.wall_s,
            serial.wall_s / parallel.wall_s.max(1e-9),
            serial.events_per_sec(),
        );
        serial_wall += serial.wall_s;
        parallel_wall += parallel.wall_s;
        serial_events += serial.events;
        figures.push((group.name, serial, parallel));
    }
    let groups_wall_s = groups_start.elapsed().as_secs_f64();
    let speedup = serial_wall / parallel_wall.max(1e-9);
    let serial_eps = serial_events as f64 / serial_wall.max(1e-9);
    eprintln!("bench_baseline: total serial {serial_wall:.3}s, --jobs {jobs} {parallel_wall:.3}s, speedup {speedup:.2}x");

    eprintln!("bench_baseline: profiling the event mix");
    let mix_start = Instant::now();
    let mix = event_mix(queue);
    let event_mix_wall_s = mix_start.elapsed().as_secs_f64();
    eprintln!("bench_baseline: phases — groups {groups_wall_s:.3}s, event-mix {event_mix_wall_s:.3}s");

    let report = Json::Obj(vec![
        ("cpus".to_string(), Json::Num(cpus as f64)),
        ("jobs".to_string(), Json::Num(jobs as f64)),
        ("queue".to_string(), Json::Str(queue.name().to_string())),
        (
            "figures".to_string(),
            Json::Arr(
                figures
                    .iter()
                    .map(|(name, serial, parallel)| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(name.to_string())),
                            ("serial".to_string(), serial.to_json()),
                            ("parallel".to_string(), parallel.to_json()),
                            ("speedup".to_string(), Json::Num(serial.wall_s / parallel.wall_s.max(1e-9))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "total".to_string(),
            Json::Obj(vec![
                ("serial_wall_s".to_string(), Json::Num(serial_wall)),
                ("parallel_wall_s".to_string(), Json::Num(parallel_wall)),
                ("speedup".to_string(), Json::Num(speedup)),
                ("events".to_string(), Json::Num(serial_events as f64)),
                ("serial_events_per_sec".to_string(), Json::Num(serial_eps)),
            ]),
        ),
        // Wall-clock per-phase timings (bench-level only — the sim itself
        // never reads a wall clock).
        (
            "phases".to_string(),
            Json::Obj(vec![("groups_wall_s".to_string(), Json::Num(groups_wall_s)), ("event_mix_wall_s".to_string(), Json::Num(event_mix_wall_s))]),
        ),
        ("event_mix".to_string(), mix),
    ]);
    if let Err(e) = write_atomic(Path::new(&out_path), &(report.render_pretty() + "\n")) {
        eprintln!("bench_baseline: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("bench_baseline: wrote {out_path}");

    if let Some(path) = check_path {
        let committed = match std::fs::read_to_string(&path).map_err(|e| e.to_string()).and_then(|t| Json::parse(&t)) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("bench_baseline: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let reference = committed.get("total").and_then(|t| t.get("serial_events_per_sec")).and_then(Json::as_f64).unwrap_or(0.0);
        // 15% regression budget: tight enough to catch the wheel backend
        // silently degrading to heap-like behavior (the wheel/heap gap is
        // well beyond 15%), loose enough for CI timing noise.
        let floor = reference * 0.85;
        if serial_eps < floor {
            eprintln!("bench_baseline: REGRESSION — serial {serial_eps:.0} ev/s < 85% of committed {reference:.0} ev/s");
            std::process::exit(1);
        }
        eprintln!("bench_baseline: ok — serial {serial_eps:.0} ev/s vs committed {reference:.0} ev/s (floor {floor:.0})");
    }
}
