#![warn(clippy::unwrap_used)]

use clove_harness::experiments::{presto_oracle_weights, rpc_point, ExpConfig};
use clove_harness::scenario::TopologyKind;
use clove_harness::Scheme;

fn main() {
    // 2 seeds pooled to damp heavy-tail noise.
    let cfg = ExpConfig { jobs_per_conn: 200, conns_per_client: 2, seeds: 2, horizon_secs: 60, jobs: 1, strict: false, ..ExpConfig::quick() };
    for (topo, loads) in [(TopologyKind::Asymmetric, vec![0.5, 0.7, 0.8]), (TopologyKind::Symmetric, vec![0.5, 0.8])] {
        println!("== {topo:?} ==");
        for load in loads {
            for scheme in [
                Scheme::Ecmp,
                Scheme::EdgeFlowlet,
                Scheme::CloveEcn,
                Scheme::CloveInt,
                Scheme::Presto { oracle_weights: presto_oracle_weights(topo) },
                Scheme::Mptcp { subflows: 4 },
                Scheme::Conga,
                Scheme::LetFlow,
            ] {
                let mut s = rpc_point(&scheme, topo, load, &cfg);
                println!("load {:.0}% {:<14} avg={:.4}s p99={:.4}s", load * 100.0, scheme.label(), s.avg(), s.p99());
            }
            println!();
        }
    }
}
