#![warn(clippy::unwrap_used)]

//! Regenerate the paper's figures as text tables.
//!
//! Usage:
//! ```text
//! cargo run --release -p clove-bench --bin figures -- [fig4b|fig4c|fig5|fig6|fig7|fig8a|fig8b|fig9|resilience|feedback|recovery|headline|all] [--quick] [--jobs N] [--strict] [--resume] [--queue wheel|heap]
//! ```
//!
//! `--quick` uses the small experiment configuration (fast, noisier);
//! the default uses `ExpConfig::full()` (the settings behind the numbers
//! recorded in EXPERIMENTS.md). `--jobs N` fans the experiment matrix out
//! over N worker threads; the tables are byte-identical at any N.
//! `--strict` runs every cell under the invariant monitor and aborts on
//! any violation. `--queue heap` swaps the timing-wheel event queue for
//! the legacy binary heap (differential oracle; tables are byte-identical
//! under either backend).
//!
//! Every completed cell is checkpointed to `results/.journal/figures/`.
//! `--resume` serves cells finished by an earlier (interrupted) invocation
//! from that journal instead of re-running them; the resulting tables are
//! byte-identical to an uninterrupted run at any `--jobs` width. Without
//! `--resume` the journal is wiped at startup.
//!
//! Cells that panic or stall are quarantined, not fatal: affected points
//! render as `-` with a footer naming each quarantined cell — plus the
//! telemetry snapshot written for it under `results/telemetry/` (cell
//! metadata, failure reason, and a `--trace` repro command) — and the
//! process exits 3 so CI notices.
//!
//! Per-phase wall-clock timings go to stderr; `CLOVE_PROFILE=1` adds a
//! per-matrix orchestrator profile line (cell counts, summed cell time,
//! slowest cell). Neither touches stdout, so tables and CSVs stay
//! byte-identical.

use clove_harness::experiments::{self, ExpConfig, PointCache};
use clove_harness::scenario::TopologyKind;
use clove_harness::{write_atomic, Scheme};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set when any emitted table carried quarantined cells; turns into exit 3.
static SAW_QUARANTINE: AtomicBool = AtomicBool::new(false);

fn note_quarantine(quarantined: &[String]) {
    if !quarantined.is_empty() {
        SAW_QUARANTINE.store(true, Ordering::Release);
    }
}

/// Wall-clock per-phase timing for the figure run itself. Stderr only —
/// the stdout tables/CSVs are byte-identical regardless — and bench-level,
/// so the sim's determinism contract is untouched. Set `CLOVE_PROFILE=1`
/// to additionally get per-matrix orchestrator profiles (cell counts,
/// summed cell time, slowest cell) from the harness.
fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    eprintln!("figures: phase {name} {:.3}s", start.elapsed().as_secs_f64());
    out
}

fn save_csv(csv_name: &str, contents: &str) {
    if std::env::var_os("CLOVE_SAVE_CSV").is_some() {
        let _ = write_atomic(Path::new(&format!("results/{csv_name}.csv")), contents);
    }
}

fn emit(table: clove_harness::report::FigureTable, csv_name: &str) {
    println!("{}", table.render());
    note_quarantine(&table.quarantined);
    save_csv(csv_name, &table.to_csv());
}

/// Parse `--jobs N` / `--jobs=N` (default 1 = serial).
fn parse_jobs(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            return it.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or(1);
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok().filter(|&n| n >= 1).unwrap_or(1);
        }
    }
    1
}

/// Parse `--queue wheel|heap` / `--queue=...` (default: timing wheel).
fn parse_queue(args: &[String]) -> clove_sim::QueueBackend {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let v = if a == "--queue" { it.next().map(String::as_str) } else { a.strip_prefix("--queue=") };
        if let Some(v) = v {
            return v.parse().unwrap_or_else(|e| {
                eprintln!("figures: {e}");
                std::process::exit(2);
            });
        }
    }
    clove_sim::QueueBackend::default()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let strict = args.iter().any(|a| a == "--strict");
    let resume = args.iter().any(|a| a == "--resume");
    let jobs = parse_jobs(&args);
    let queue = parse_queue(&args);
    let which = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !(a.starts_with("--") || i > 0 && (args[i - 1] == "--jobs" || args[i - 1] == "--queue")))
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "all".into());
    let journal = match clove_harness::Journal::open("results/.journal/figures", resume) {
        Ok(j) => Some(std::sync::Arc::new(j)),
        Err(e) => {
            eprintln!("figures: warning: no checkpoint journal ({e}); running without one");
            None
        }
    };
    let cfg = (if quick { ExpConfig::quick() } else { ExpConfig::full() }).with_jobs(jobs).with_strict(strict).with_journal(journal.clone()).with_queue(queue);

    // The paper sweeps 20–90%; the reproduction reports a representative
    // subset to bound wall-clock time.
    let loads_full = [0.5, 0.8];
    let loads_asym = [0.3, 0.5, 0.7];
    let loads = if quick { &loads_full[..1] } else { &loads_full[..] };
    let loads_a = if quick { &loads_asym[1..3] } else { &loads_asym[..] };

    let run_fig = |name: &str| which == "all" || which == name || (which == "fig5" && name.starts_with("fig5"));
    // Shared run caches: 4c/5a/5b/5c share testbed-asymmetric runs; 8b/9
    // share sim-asymmetric runs.
    let mut testbed_cache = PointCache::new();
    let mut sim_cache = PointCache::new();

    if run_fig("fig4b") {
        timed("fig4b", || emit(experiments::fig4b(loads, &cfg), "fig4b"));
    }
    if run_fig("fig4c") {
        timed("fig4c", || emit(experiments::fig4c_cached(loads_a, &cfg, &mut testbed_cache), "fig4c"));
    }
    if run_fig("fig5a") {
        timed("fig5a", || emit(experiments::fig5a_cached(loads_a, &cfg, &mut testbed_cache), "fig5a"));
    }
    if run_fig("fig5b") {
        timed("fig5b", || emit(experiments::fig5b_cached(loads_a, &cfg, &mut testbed_cache), "fig5b"));
    }
    if run_fig("fig5c") {
        timed("fig5c", || emit(experiments::fig5c_cached(loads_a, &cfg, &mut testbed_cache), "fig5c"));
    }
    if run_fig("fig6") {
        // Two loads suffice for the sensitivity story.
        timed("fig6", || emit(experiments::fig6(&loads_a[1..], &cfg), "fig6"));
    }
    if run_fig("fig7") {
        let fanouts: Vec<u32> = if quick { vec![4, 12] } else { vec![1, 4, 8, 16] };
        let requests = if quick { 10 } else { 25 };
        timed("fig7", || emit(experiments::fig7(&fanouts, requests, &cfg), "fig7"));
    }
    if run_fig("fig8a") {
        timed("fig8a", || emit(experiments::fig8a(loads, &cfg), "fig8a"));
    }
    if run_fig("fig8b") {
        timed("fig8b", || emit(experiments::fig8b_cached(loads_a, &cfg, &mut sim_cache), "fig8b"));
    }
    if run_fig("fig9") {
        timed("fig9", || {
            println!("## Fig 9 — mice FCT CDFs at 70% load, asymmetric");
            for (scheme, cdf) in experiments::fig9_cached(&cfg, &mut sim_cache) {
                if scheme.ends_with("[quarantined]") {
                    SAW_QUARANTINE.store(true, Ordering::Release);
                }
                println!("# {scheme}");
                for (fct, frac) in cdf {
                    println!("{fct:.6},{frac:.4}");
                }
            }
            println!();
        });
    }
    if run_fig("resilience") {
        timed("resilience", || {
            let table = experiments::resilience(&experiments::resilience_schemes(), &cfg);
            println!("{}", table.render());
            note_quarantine(&table.quarantined);
            save_csv("resilience", &table.to_csv());
        });
    }
    if run_fig("feedback") {
        timed("feedback", || {
            let table = experiments::feedback_degradation(&experiments::resilience_schemes(), &cfg);
            println!("{}", table.render());
            note_quarantine(&table.quarantined);
            save_csv("feedback", &table.to_csv());
        });
    }
    if run_fig("recovery") {
        timed("recovery", || {
            let table = experiments::recovery(&experiments::resilience_schemes(), &cfg);
            println!("{}", table.render());
            note_quarantine(&table.quarantined);
            save_csv("recovery", &table.to_csv());
        });
    }
    if run_fig("headline") {
        timed("headline", || headline(&cfg));
    }
    if let Some(j) = &journal {
        if j.hits() > 0 {
            eprintln!("figures: resumed {} cell(s) from the journal", j.hits());
        }
    }
    if SAW_QUARANTINE.load(Ordering::Acquire) {
        eprintln!("figures: some cells were quarantined (see table footers); affected points render as '-'");
        std::process::exit(3);
    }
}

/// The paper's headline ratios (§5.1/5.2, §6): how much better Clove-ECN
/// is than ECMP, and what fraction of the ECMP→CONGA gap it captures.
fn headline(cfg: &ExpConfig) {
    let load = 0.7;
    println!("## Headline ratios at {:.0}% load, asymmetric topology", load * 100.0);
    let ecmp = experiments::rpc_point(&Scheme::Ecmp, TopologyKind::Asymmetric, load, cfg).avg();
    let ef = experiments::rpc_point(&Scheme::EdgeFlowlet, TopologyKind::Asymmetric, load, cfg).avg();
    let clove = experiments::rpc_point(&Scheme::CloveEcn, TopologyKind::Asymmetric, load, cfg).avg();
    let conga = experiments::rpc_point(&Scheme::Conga, TopologyKind::Asymmetric, load, cfg).avg();
    println!("avg FCT (s): ECMP={ecmp:.3} Edge-Flowlet={ef:.3} Clove-ECN={clove:.3} CONGA={conga:.3}");
    println!("Clove-ECN vs ECMP speedup: {:.2}x (paper: ~3-7.5x at high load)", ecmp / clove);
    println!("Edge-Flowlet vs ECMP speedup: {:.2}x (paper: ~4.2x at 80%)", ecmp / ef);
    let gap = ecmp - conga;
    if gap > 0.0 {
        let captured = (ecmp - clove) / gap * 100.0;
        println!("Clove-ECN captures {captured:.0}% of the ECMP→CONGA gap (paper: ~80%)");
    }
}
