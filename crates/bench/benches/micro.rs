//! Microbenchmarks of the hot-path components: the costs §4 of the paper
//! discusses for the kernel datapath (flowlet lookups, path selection,
//! ECMP hashing) plus the simulator's own event queue.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clove_core::{CloveEcnConfig, CloveEcnPolicy, FlowletConfig, FlowletTable, Wrr};
use clove_net::codec::{decode, encode_into};
use clove_net::hash::{ecmp_select, hash_tuple};
use clove_net::packet::{Encap, Feedback, Packet, PacketKind};
use clove_net::types::{FlowKey, HostId};
use clove_overlay::EdgePolicy;
use clove_sim::{Duration, EventQueue, QueueBackend, SimRng, Time};

fn bench_ecmp_hash(c: &mut Criterion) {
    let key = FlowKey::tcp(HostId(3), HostId(17), 49_321, 7471);
    c.bench_function("ecmp_hash_tuple", |b| b.iter(|| hash_tuple(black_box(&key), black_box(0xDEAD_BEEF))));
    c.bench_function("ecmp_select_of_4", |b| b.iter(|| ecmp_select(black_box(&key), black_box(0xDEAD_BEEF), black_box(4))));
}

fn bench_flowlet_table(c: &mut Criterion) {
    c.bench_function("flowlet_table_hit", |b| {
        let mut table = FlowletTable::new(FlowletConfig::with_gap(Duration::from_micros(100)));
        let flow = FlowKey::tcp(HostId(0), HostId(1), 1000, 80);
        let mut now = Time::ZERO;
        table.on_packet(now, flow, |_| 42);
        b.iter(|| {
            now += Duration::from_nanos(500);
            table.on_packet(black_box(now), black_box(flow), |_| 42)
        })
    });
    c.bench_function("flowlet_table_1k_flows", |b| {
        let mut table = FlowletTable::new(FlowletConfig::with_gap(Duration::from_micros(100)));
        let mut rng = SimRng::new(5);
        let flows: Vec<FlowKey> = (0..1000).map(|i| FlowKey::tcp(HostId(i % 16), HostId(16 + i % 16), 1000 + i as u16, 80)).collect();
        let mut now = Time::ZERO;
        b.iter(|| {
            now += Duration::from_nanos(200);
            let f = flows[rng.below(1000) as usize];
            table.on_packet(now, f, |_| 7)
        })
    });
}

fn bench_wrr_and_policy(c: &mut Criterion) {
    c.bench_function("wrr_pick_4", |b| {
        let mut w = Wrr::new();
        w.set_ports(&[1, 2, 3, 4]);
        b.iter(|| w.pick())
    });
    c.bench_function("clove_ecn_select_port", |b| {
        let mut p = CloveEcnPolicy::new(CloveEcnConfig::for_rtt(Duration::from_micros(20)));
        p.on_paths_updated(Time::ZERO, HostId(1), &[10, 20, 30, 40]);
        let mut pkt = Packet::new(1, 1500, FlowKey::tcp(HostId(0), HostId(1), 5, 80), PacketKind::Data { seq: 0, len: 1400, dsn: 0 });
        let mut now = Time::ZERO;
        b.iter(|| {
            now += Duration::from_nanos(700);
            p.select_port(now, HostId(1), &mut pkt)
        })
    });
    c.bench_function("clove_ecn_feedback", |b| {
        let mut p = CloveEcnPolicy::new(CloveEcnConfig::for_rtt(Duration::from_micros(20)));
        p.on_paths_updated(Time::ZERO, HostId(1), &[10, 20, 30, 40]);
        let mut now = Time::ZERO;
        let mut i = 0u16;
        b.iter(|| {
            now += Duration::from_nanos(900);
            i = i.wrapping_add(1);
            let port = [10u16, 20, 30, 40][(i % 4) as usize];
            p.on_feedback(now, HostId(1), &Feedback::Ecn { sport: port, congested: i.is_multiple_of(3) });
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    // Both backends on identical streams: the wheel/heap gap measured here
    // is the budget behind bench_baseline's regression floor.
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        c.bench_function(&format!("event_queue_push_pop_1k_{}", backend.name()), |b| {
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::with_capacity_and_backend(1024, backend);
                for i in 0..1000u64 {
                    q.push(Time::from_nanos(i * 37 % 1000), i);
                }
                let mut acc = 0u64;
                while let Some(e) = q.pop() {
                    acc = acc.wrapping_add(e.event);
                }
                acc
            })
        });
        // The pre-sizing story: one pre-sized queue reused via clear()
        // across a 1M-event stream, the shape `event_capacity_hint`
        // optimizes for.
        c.bench_function(&format!("event_queue_push_pop_1M_{}", backend.name()), |b| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity_and_backend(1 << 20, backend);
            b.iter(|| {
                q.clear();
                for i in 0..1_000_000u64 {
                    q.push(Time::from_nanos(i * 37 % 999_983), i);
                }
                let mut acc = 0u64;
                while let Some(e) = q.pop() {
                    acc = acc.wrapping_add(e.event);
                }
                acc
            })
        });
        // Simulator-shaped load: a sliding window of pending events where
        // pops interleave with near-future pushes (the wheel's fast path).
        c.bench_function(&format!("event_queue_sliding_window_{}", backend.name()), |b| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity_and_backend(4096, backend);
            b.iter(|| {
                q.clear();
                for i in 0..2048u64 {
                    q.push(Time::from_nanos(i * 13 % 4096), i);
                }
                let mut acc = 0u64;
                for i in 0..100_000u64 {
                    let e = q.pop().expect("window never drains");
                    acc = acc.wrapping_add(e.event);
                    q.push(e.at + Duration::from_nanos(1 + i * 31 % 4096), i);
                }
                acc
            })
        });
    }
}

fn bench_codec(c: &mut Criterion) {
    c.bench_function("codec_encode_decode_roundtrip", |b| {
        let mut pkt = Packet::new(1, 1500, FlowKey::tcp(HostId(3), HostId(17), 49_321, 7471), PacketKind::Data { seq: 4096, len: 1400, dsn: 4096 });
        pkt.outer = Some(Encap { src: HostId(3), dst: HostId(17), sport: 51_000 });
        let mut scratch = Vec::new();
        b.iter(|| {
            encode_into(black_box(&pkt), &mut scratch).expect("codec scratch encode");
            decode(black_box(&scratch), 1).expect("codec scratch decode")
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ecmp_hash, bench_flowlet_table, bench_wrr_and_policy, bench_event_queue, bench_codec
);
criterion_main!(micro);
