//! Figure 8 bench: the "NS2 simulation" scheme set (ECMP, Edge-Flowlet,
//! Clove-ECN, Clove-INT, CONGA) on symmetric (8a) and asymmetric (8b)
//! topologies.

use clove_harness::experiments::{rpc_point, ExpConfig};
use clove_harness::scenario::TopologyKind;
use clove_harness::Scheme;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cfg() -> ExpConfig {
    ExpConfig { jobs_per_conn: 4, conns_per_client: 1, seeds: 1, horizon_secs: 10, jobs: 1, strict: false, ..ExpConfig::quick() }
}

fn fig8a_symmetric(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("fig8a_sim_symmetric");
    for scheme in [Scheme::CloveInt, Scheme::Conga] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &scheme, |b, s| b.iter(|| rpc_point(s, TopologyKind::Symmetric, 0.5, &cfg).avg()));
    }
    g.finish();
}

fn fig8b_asymmetric(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("fig8b_sim_asymmetric");
    for scheme in [Scheme::CloveInt, Scheme::Conga, Scheme::LetFlow] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &scheme, |b, s| b.iter(|| rpc_point(s, TopologyKind::Asymmetric, 0.5, &cfg).avg()));
    }
    g.finish();
}

criterion_group!(
    name = fig8;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = fig8a_symmetric, fig8b_asymmetric
);
criterion_main!(fig8);
