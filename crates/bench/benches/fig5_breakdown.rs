//! Figure 5 bench: FCT breakdowns on the asymmetric testbed — mice
//! (<100 KB, Fig 5a), elephants (>10 MB, Fig 5b), and p99 (Fig 5c) — all
//! computed from one run per scheme.

use clove_harness::experiments::{rpc_point, ExpConfig};
use clove_harness::scenario::TopologyKind;
use clove_harness::Scheme;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig5_breakdowns(c: &mut Criterion) {
    let cfg = ExpConfig { jobs_per_conn: 4, conns_per_client: 1, seeds: 1, horizon_secs: 10, jobs: 1, strict: false, ..ExpConfig::quick() };
    let mut g = c.benchmark_group("fig5_breakdowns_asymmetric");
    for scheme in [Scheme::Ecmp, Scheme::CloveEcn] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &scheme, |b, s| {
            b.iter(|| {
                let mut summary = rpc_point(s, TopologyKind::Asymmetric, 0.5, &cfg);
                // All three Figure-5 projections from one sample set.
                let mice = summary.mice.mean();
                let elephants = summary.elephants.mean();
                let p99 = summary.p99();
                (mice, elephants, p99)
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = fig5;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = fig5_breakdowns
);
criterion_main!(fig5);
