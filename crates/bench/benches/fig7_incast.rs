//! Figure 7 bench: incast goodput vs request fan-in for Clove-ECN,
//! Edge-Flowlet and MPTCP.

use clove_harness::scenario::{Scenario, TopologyKind};
use clove_harness::Scheme;
use clove_sim::Time;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig7_incast(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_incast_goodput");
    for scheme in [Scheme::CloveEcn, Scheme::EdgeFlowlet, Scheme::Mptcp { subflows: 4 }] {
        for fanout in [4u32, 12] {
            let id = format!("{}_n{}", scheme.label(), fanout);
            g.bench_with_input(BenchmarkId::from_parameter(id), &(scheme.clone(), fanout), |b, (s, n)| {
                b.iter(|| {
                    let mut scenario = Scenario::new(s.clone(), TopologyKind::Symmetric, 0.5, 9);
                    scenario.horizon = Time::from_secs(10);
                    let out = scenario.run_incast(*n, 4, 10_000_000);
                    assert!(out.rounds > 0);
                    out.goodput_bps
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    name = fig7;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = fig7_incast
);
criterion_main!(fig7);
