//! Figure 6 bench: Clove-ECN parameter sensitivity — (flowlet gap, ECN
//! threshold) variants on the asymmetric testbed.

use clove_harness::scenario::{Scenario, TopologyKind};
use clove_harness::Scheme;
use clove_sim::{Duration, Time};
use clove_workload::web_search;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig6_sensitivity(c: &mut Criterion) {
    let variants: [(&str, f64, u32); 4] = [("1xRTT_20pkts", 1.0, 20), ("0.2xRTT_20pkts", 0.2, 20), ("5xRTT_20pkts", 5.0, 20), ("1xRTT_40pkts", 1.0, 40)];
    let dist = web_search();
    let mut g = c.benchmark_group("fig6_clove_param_sensitivity");
    for (name, gap_mult, ecn_pkts) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(name), &(gap_mult, ecn_pkts), |b, &(gm, ep)| {
            b.iter(|| {
                let mut s = Scenario::new(Scheme::CloveEcn, TopologyKind::Asymmetric, 0.5, 77);
                s.jobs_per_conn = 4;
                s.conns_per_client = 1;
                s.horizon = Time::from_secs(10);
                s.profile.flowlet_gap = Duration::from_secs_f64(s.profile.flowlet_gap.as_secs_f64() * gm);
                s.profile.ecn_threshold_pkts = ep;
                let out = s.run_rpc(&dist);
                out.fct.avg()
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = fig6;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = fig6_sensitivity
);
criterion_main!(fig6);
