//! Figure 9 bench: mice-FCT CDFs at 70% load on the asymmetric topology
//! for ECMP / Clove-ECN / CONGA.

use clove_harness::experiments::{rpc_point, ExpConfig};
use clove_harness::scenario::TopologyKind;
use clove_harness::Scheme;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig9_cdfs(c: &mut Criterion) {
    let cfg = ExpConfig { jobs_per_conn: 4, conns_per_client: 1, seeds: 1, horizon_secs: 10, jobs: 1, strict: false, ..ExpConfig::quick() };
    let mut g = c.benchmark_group("fig9_mice_cdf_asymmetric_70pct");
    for scheme in [Scheme::Ecmp, Scheme::CloveEcn, Scheme::Conga] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &scheme, |b, s| {
            b.iter(|| {
                let mut summary = rpc_point(s, TopologyKind::Asymmetric, 0.7, &cfg);
                let cdf = summary.mice_cdf(20);
                assert!(!cdf.is_empty());
                cdf.len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = fig9;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = fig9_cdfs
);
criterion_main!(fig9);
