//! A tiny, dependency-free re-implementation of the subset of the
//! [proptest](https://crates.io/crates/proptest) API that this workspace's
//! property tests use. The build must work fully offline, so this shim is
//! vendored in-tree rather than fetched from crates.io.
//!
//! Differences from real proptest (intentional, for size):
//! * no shrinking — a failing case panics with the raw assertion message;
//! * strategies are sampled uniformly, seeded deterministically from the
//!   test's module path + name so runs are reproducible;
//! * `prop_assert*` are plain `assert*` wrappers (they panic instead of
//!   returning `Err`).

use std::marker::PhantomData;

/// Deterministic splitmix64 generator used to sample strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator; identical seeds yield identical streams.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64_01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Compile-time FNV-1a hash of a test path, used as the base RNG seed.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span.max(1)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64;
                *self.start() + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_01() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64_01()
    }
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vectors of `elem`-drawn values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// See [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniformly pick one of `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select(items)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just, ProptestConfig, Strategy};

    /// Namespaced strategy modules, mirroring proptest's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let base: u64 = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut __rng = $crate::TestRng::new(base.wrapping_add(case as u64));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u16..=5).sample(&mut rng);
            assert!(w <= 5);
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_compiles_and_runs(x in 0u32..10, v in collection::vec(0u8..4, 1..8)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }
}
