#![warn(missing_docs)]

//! A tiny, dependency-free facade over the subset of the
//! [rayon](https://crates.io/crates/rayon) API the experiment runner uses.
//! The build must work fully offline, so this shim is vendored in-tree
//! (same treatment as the `criterion` and `proptest` facades).
//!
//! Supported surface:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — pick a worker count
//!   and run a closure under it.
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — the one parallel shape
//!   the harness needs: map an indexed work-list and get results back **in
//!   input order**, regardless of completion order.
//! * [`current_num_threads`] — how wide the ambient pool is.
//!
//! Implementation: `std::thread::scope` with an atomic work-claiming
//! counter. Each worker claims the next unprocessed index, computes the
//! result, and records `(index, result)`; the caller merges and sorts by
//! index, so output order is the input order — the property the harness's
//! byte-identical-CSV determinism test relies on. Worker panics propagate
//! to the caller when the scope joins, matching rayon's behavior.
//!
//! Unlike real rayon there is no work-stealing deque and no global pool:
//! threads are spawned per `collect` call. The harness's jobs are whole
//! simulation runs (hundreds of milliseconds to minutes), so the few tens
//! of microseconds of thread spawn overhead are irrelevant here.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Re-exports to mirror `rayon::prelude::*` at call sites.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

thread_local! {
    /// Worker count installed by [`ThreadPool::install`]; `None` means the
    /// ambient default (all available cores).
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of worker threads parallel iterators will use in this context.
///
/// Inside [`ThreadPool::install`] this is the pool's configured width;
/// elsewhere it is the machine's available parallelism.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim cannot actually
/// fail to build a pool (there is nothing to allocate up front), so this is
/// never constructed today; it exists so call sites match real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads. `0` means "use the default"
    /// (available parallelism), matching rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Finish building the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: just a configured width in this shim — worker
/// threads are spawned per parallel call rather than kept warm.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's width installed as the ambient
    /// parallelism, restoring the previous width afterwards (even on
    /// panic). Parallel iterators inside `op` use this width.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = CURRENT_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let _restore = Restore(prev);
        op()
    }

    /// This pool's configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Types that can hand out a parallel iterator over `&Self` items
/// (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a slice (`slice.par_iter()`).
#[derive(Debug)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f`, to be collected later.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { slice: self.slice, f }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, F> fmt::Debug for ParMap<'a, T, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParMap").field("len", &self.slice.len()).finish()
    }
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Execute the map across the ambient pool width and collect results
    /// **in input order** (never completion order).
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = current_num_threads().max(1);
        let items = self.slice;
        if n == 1 || items.len() <= 1 {
            return items.iter().map(&self.f).collect();
        }

        let workers = n.min(items.len());
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    collected.lock().expect("result mutex poisoned").extend(local);
                });
            }
        });
        let mut results = collected.into_inner().expect("result mutex poisoned");
        results.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(results.len(), items.len());
        results.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let out: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(out, input.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_sets_and_restores_width() {
        let before = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn serial_path_used_for_single_thread() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| [10usize, 20, 30].par_iter().map(|&x| x + 1).collect::<Vec<_>>());
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let input: Vec<u32> = (0..64).collect();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| input.par_iter().map(|&x| if x == 13 { panic!("boom") } else { x }).collect::<Vec<_>>())
        }));
        assert!(res.is_err());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let pool = ThreadPoolBuilder::new().num_threads(16).build().unwrap();
        let out: Vec<u8> = pool.install(|| [1u8, 2].par_iter().map(|&x| x).collect::<Vec<_>>());
        assert_eq!(out, vec![1, 2]);
    }
}
