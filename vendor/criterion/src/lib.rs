//! A tiny, dependency-free re-implementation of the subset of the
//! [criterion](https://crates.io/crates/criterion) API that this workspace's
//! benches use. The build must work fully offline, so this shim is vendored
//! in-tree rather than fetched from crates.io.
//!
//! It measures with a plain `Instant` loop and prints `name: time/iter`
//! lines instead of criterion's statistical analysis — enough to compare
//! hot paths locally and to keep `cargo bench` compiling and running.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Soft budget for the whole measurement of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Criterion {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        b.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// No-op; criterion prints a summary here.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size, self.criterion.measurement_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Benchmark a closure with no distinguished input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size, self.criterion.measurement_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// End the group (prints nothing in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from the parameter alone.
    pub fn from_parameter<D: Display>(param: D) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }

    /// Id rendered as `name/param`.
    pub fn new<D: Display>(name: &str, param: D) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    budget: Duration,
    best_ns_per_iter: Option<f64>,
}

impl Bencher {
    fn new(samples: usize, budget: Duration) -> Bencher {
        Bencher { samples, budget, best_ns_per_iter: None }
    }

    /// Time the routine; keeps the best (lowest-noise) sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit in ~1/sample_size of the budget?
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget.as_nanos() as u64 / self.samples.max(1) as u64;
        let iters = (per_sample / once.as_nanos().max(1) as u64).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            if self.best_ns_per_iter.is_none_or(|best| ns < best) {
                self.best_ns_per_iter = Some(ns);
            }
        }
    }

    fn report(&self, name: &str) {
        match self.best_ns_per_iter {
            Some(ns) if ns >= 1e6 => println!("{name}: {:.3} ms/iter", ns / 1e6),
            Some(ns) if ns >= 1e3 => println!("{name}: {:.3} µs/iter", ns / 1e3),
            Some(ns) => println!("{name}: {ns:.1} ns/iter"),
            None => println!("{name}: (no samples)"),
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    criterion_group!(shim_group, sample_bench);

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
        c.bench_function("tiny", |b| b.iter(|| black_box(3u32) * black_box(7)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter("x"), &5u32, |b, &v| b.iter(|| black_box(v) + 1));
        g.finish();
    }

    #[test]
    fn group_macro_produces_runner() {
        shim_group();
    }
}
