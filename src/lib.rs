#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # clove — a full reproduction of *Clove: Congestion-Aware Load
//! Balancing at the Virtual Edge* (CoNEXT 2017)
//!
//! This umbrella crate re-exports the whole workspace as one coherent
//! public API. See the README for a tour; in brief:
//!
//! ```text
//! clove::sim       deterministic discrete-event engine
//! clove::net       packet-level fabric (ECMP switches, links, topologies)
//! clove::tcp       guest transports (NewReno, DCTCP, MPTCP)
//! clove::overlay   hypervisor vswitch (STT encap, feedback relay, Presto rx)
//! clove::algo      the Clove algorithms (flowlets, discovery, ECN/INT/latency)
//! clove::baselines ECMP, Presto; CONGA/LetFlow fabric configs
//! clove::workload  web-search CDF, RPC model, incast, FCT accounting
//! clove::harness   ready-made experiments for every paper figure
//! ```
//!
//! ## Quickstart
//!
//! Run a small head-to-head between ECMP and Clove-ECN on the paper's
//! asymmetric testbed topology:
//!
//! ```
//! use clove::harness::{Scenario, Scheme, TopologyKind};
//! use clove::workload::web_search;
//! use clove::sim::Time;
//!
//! let mut scenario = Scenario::new(Scheme::CloveEcn, TopologyKind::Asymmetric, 0.3, 42);
//! scenario.jobs_per_conn = 2;
//! scenario.conns_per_client = 1;
//! scenario.horizon = Time::from_secs(5);
//! let outcome = scenario.run_rpc(&web_search());
//! assert!(outcome.fct.all.count() > 0);
//! ```

pub use clove_baselines as baselines;
pub use clove_core as algo;
pub use clove_harness as harness;
pub use clove_net as net;
pub use clove_overlay as overlay;
pub use clove_sim as sim;
pub use clove_tcp as tcp;
pub use clove_workload as workload;
